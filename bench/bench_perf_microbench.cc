// Component throughput microbenchmarks (google-benchmark): simulator step
// rate, policy-network forward/backward, feature extraction, city
// construction. These bound how far the experiments can scale on one core.
//
// Beyond the console table, `--json=PATH` writes a `fairmove.bench.v1`
// document (one entry per finished benchmark with real/cpu ns-per-iter and
// the user counters). Committing one of those as BENCH_perf.json at the
// repo root makes it the baseline that tools/bench_gate — the ctest
// `perfgate` label — compares every fresh run against.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fairmove/core/fairmove.h"
#include "fairmove/obs/flight_recorder.h"
#include "fairmove/obs/jsonl.h"
#include "fairmove/obs/latency.h"
#include "fairmove/nn/adam.h"
#include "fairmove/nn/mlp.h"
#include "fairmove/rl/cma2c_policy.h"
#include "fairmove/rl/features.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

std::unique_ptr<FairMoveSystem> MakeSystem(double scale) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(scale);
  cfg.sim.trace_level = TraceLevel::kAggregatesOnly;
  return std::move(FairMoveSystem::Create(cfg)).value();
}

void BM_SimulatorStepGt(benchmark::State& state) {
  auto system = MakeSystem(static_cast<double>(state.range(0)) / 100.0);
  GtPolicy policy;
  for (auto _ : state) {
    system->sim().Step(&policy);
  }
  state.counters["taxis"] =
      static_cast<double>(system->sim().num_taxis());
  state.counters["taxi_slots/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * system->sim().num_taxis(),
      benchmark::Counter::kIsRate);
}
// /100 is the paper's full Shenzhen setting (20,130 taxis, 491 regions,
// 123 stations) — the default experiment scale, benched directly so the
// perfgate pins the configuration the tables actually run at.
BENCHMARK(BM_SimulatorStepGt)->Arg(5)->Arg(10)->Arg(25)->Arg(100);

// Raw SoA column-scan throughput over the full-scale fleet: the vacancy
// scan + SoC reduction every phase of the sharded Step leans on. Pins the
// structure-of-arrays layout win — a regression here means someone put a
// hot field back behind a pointer chase.
void BM_FleetStateScan(benchmark::State& state) {
  auto system = MakeSystem(1.0);
  const FleetState& fleet = system->sim().fleet();
  const int64_t now = 0;
  for (auto _ : state) {
    int vacant = 0;
    double soc_sum = 0.0;
    for (TaxiId i = 0; i < fleet.size(); ++i) {
      vacant += fleet.IsVacant(i, now) ? 1 : 0;
      soc_sum += fleet.soc[static_cast<size_t>(i)];
    }
    benchmark::DoNotOptimize(vacant);
    benchmark::DoNotOptimize(soc_sum);
  }
  state.counters["taxis"] = static_cast<double>(fleet.size());
  state.counters["taxi_scans/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * fleet.size(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetStateScan);

void BM_CityBuild(benchmark::State& state) {
  CityConfig cfg =
      CityConfig{}.Scaled(static_cast<double>(state.range(0)) / 100.0);
  for (auto _ : state) {
    auto city = CityBuilder(cfg).Build();
    benchmark::DoNotOptimize(city);
  }
  state.counters["regions"] = cfg.num_regions;
}
BENCHMARK(BM_CityBuild)->Arg(10)->Arg(100);

void BM_FeatureExtraction(benchmark::State& state) {
  auto system = MakeSystem(0.1);
  FeatureExtractor features(&system->sim());
  TaxiObs obs;
  obs.taxi = 0;
  obs.region = 0;
  obs.soc = 0.5;
  obs.may_charge = true;
  std::vector<float> out;
  for (auto _ : state) {
    features.Extract(obs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["dim"] = features.dim();
}
BENCHMARK(BM_FeatureExtraction);

// One full slot's worth of displacement decisions: every taxi vacant.
std::vector<TaxiObs> MakeVacantObs(const Simulator& sim) {
  std::vector<TaxiObs> obs(static_cast<size_t>(sim.num_taxis()));
  for (size_t i = 0; i < obs.size(); ++i) {
    obs[i].taxi = static_cast<TaxiId>(i);
    obs[i].region =
        static_cast<RegionId>(i % sim.city().num_regions());
    obs[i].soc = 0.3 + 0.5 * static_cast<double>(i % 7) / 7.0;
    obs[i].may_charge = i % 3 == 0;
  }
  return obs;
}

// The batched decision path: one ExtractAll + one Mlp::Forward per slot
// (this is what CMA2C, DQN and TBA now do inside DecideActions).
void BM_PolicyDecideBatch(benchmark::State& state) {
  auto system = MakeSystem(static_cast<double>(state.range(0)) / 100.0);
  Cma2cPolicy policy(system->sim());
  policy.SetTraining(false);
  const std::vector<TaxiObs> vacant = MakeVacantObs(system->sim());
  std::vector<Action> actions;
  for (auto _ : state) {
    policy.DecideActions(system->sim(), vacant, &actions);
    benchmark::DoNotOptimize(actions);
  }
  state.counters["taxis"] = static_cast<double>(vacant.size());
  state.counters["decisions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(vacant.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PolicyDecideBatch)->Arg(5)->Arg(25);

// The seed's Mlp::Forward for one row, frozen here as the fixed comparison
// baseline: naive j-loop MatMul with the (since removed) a == 0 skip, a
// fresh buffer allocation per layer, and one scalar std::tanh call per
// hidden unit, compiled at the seed's -O2. The library kernels have been
// rewritten since; linking them into the baseline would make "scalar" a
// moving target that inherits every kernel win, so the bench keeps the
// seed math byte-for-byte instead.
std::vector<float> SeedForward1(const std::vector<Matrix>& weights,
                                const std::vector<std::vector<float>>& biases,
                                const std::vector<float>& x) {
  std::vector<float> current = x;
  for (size_t layer = 0; layer < weights.size(); ++layer) {
    const Matrix& w = weights[layer];
    const size_t n = static_cast<size_t>(w.cols());
    std::vector<float> next(n, 0.0f);
    for (int p = 0; p < w.rows(); ++p) {
      const float av = current[static_cast<size_t>(p)];
      if (av == 0.0f) continue;
      const float* w_row = w.Row(p);
      for (size_t j = 0; j < n; ++j) next[j] += av * w_row[j];
    }
    for (size_t j = 0; j < n; ++j) next[j] += biases[layer][j];
    if (layer + 1 < weights.size()) {
      for (float& v : next) v = std::tanh(v);
    }
    current = std::move(next);
  }
  return current;
}

// The seed's per-taxi decision loop, reproduced verbatim as the baseline:
// one feature vector, one heap-allocating SeedForward1, one softmax vector
// and one sample per taxi. BM_PolicyDecideBatch vs this is the
// batch-vs-scalar policy throughput the README refers to.
void BM_PolicyDecideScalar(benchmark::State& state) {
  auto system = MakeSystem(static_cast<double>(state.range(0)) / 100.0);
  const Simulator& sim = system->sim();
  FeatureExtractor features(&sim);
  const ActionSpace& space = sim.action_space();
  const int num_actions = space.size();
  Cma2cPolicy::Options options;
  std::vector<int> sizes{features.dim()};
  for (int h : options.actor_hidden) sizes.push_back(h);
  sizes.push_back(num_actions);
  Mlp actor(sizes, Activation::kTanh, options.seed);
  for (int a = space.first_charge_index(); a < num_actions; ++a) {
    actor.biases().back()[static_cast<size_t>(a)] =
        static_cast<float>(options.charge_logit_bias);
  }
  Rng rng(options.seed);
  const std::vector<TaxiObs> vacant = MakeVacantObs(sim);
  std::vector<Action> actions;
  std::vector<std::vector<float>> last_features;
  std::vector<bool> mask;
  for (auto _ : state) {
    actions.clear();
    actions.reserve(vacant.size());
    last_features.assign(vacant.size(), {});
    for (size_t i = 0; i < vacant.size(); ++i) {
      const TaxiObs& obs = vacant[i];
      features.Extract(obs, &last_features[i]);
      std::vector<float> probs =
          SeedForward1(actor.weights(), actor.biases(), last_features[i]);
      space.Mask(obs.region, obs.must_charge, obs.may_charge, &mask);
      MaskedSoftmax(mask, &probs);
      const size_t pick = rng.WeightedIndex(probs);
      actions.push_back(space.Materialize(obs.region, static_cast<int>(pick)));
    }
    benchmark::DoNotOptimize(actions);
  }
  state.counters["taxis"] = static_cast<double>(vacant.size());
  state.counters["decisions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(vacant.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PolicyDecideScalar)->Arg(5)->Arg(25);

// One comparison-grid cell: train + evaluate one method inside a private
// replica simulator against a precomputed GT baseline — the unit of work
// the racing scheduler (core/racing.h) buys with each replica it spends.
// The racing wall-clock win is (cells saved) × (this number), so the gate
// pins it: a regression here silently inflates every racing and
// fixed-replica experiment alike.
void BM_EvaluatorCell(benchmark::State& state) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(
      static_cast<double>(state.range(0)) / 100.0);
  cfg.sim.trace_level = TraceLevel::kAggregatesOnly;
  cfg.trainer.episodes = 2;
  cfg.eval.days = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Evaluator evaluator = system->MakeEvaluator();
  const MethodResult gt = evaluator.RunGroundTruth();
  evaluator.EnableReplicas(
      {&system->city(), &system->demand(), &system->sim().tariff()});
  for (auto _ : state) {
    MethodResult cell = evaluator.RunKind(PolicyKind::kFairMove, gt.metrics);
    benchmark::DoNotOptimize(cell);
  }
  state.counters["taxis"] =
      static_cast<double>(system->sim().num_taxis());
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EvaluatorCell)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_MlpForward1(benchmark::State& state) {
  Mlp net({40, 64, 64, 14}, Activation::kTanh, 1);
  std::vector<float> x(40, 0.3f);
  for (auto _ : state) {
    auto y = net.Forward1(x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_MlpForward1);

void BM_MlpTrainStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Mlp net({40, 64, 64, 14}, Activation::kTanh, 1);
  Adam adam(&net, Adam::Options{});
  Rng rng(2);
  Matrix x(batch, 40), grad(batch, 14);
  x.RandomGaussian(rng, 1.0);
  grad.RandomGaussian(rng, 0.01);
  for (auto _ : state) {
    Mlp::Tape tape;
    net.ForwardTape(x, &tape);
    Mlp::Gradients grads = net.MakeGradients();
    net.Backward(tape, grad, &grads);
    adam.Step(grads);
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MlpTrainStep)->Arg(64)->Arg(512)->Arg(3500);

// The flight-recorder hot path: one enabled check, one thread-local ring
// load, a 24-byte slot store and a release head bump. This is the cost the
// always-on recorder adds to every FM_SPAN and FM_FLIGHT_EVENT site, so the
// gate pins it — the budget is tens of nanoseconds, not hundreds.
void BM_FlightRecorderEvent(benchmark::State& state) {
  FlightRecorder::SetEnabled(true);
  static const uint16_t name_id = FlightRecorder::InternName("bench.event");
  int32_t arg = 0;
  for (auto _ : state) {
    FlightRecorder::Instant(name_id, arg++, 42);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlightRecorderEvent);

// The live-latency record path: one bucket index (count-leading-zeros), two
// relaxed fetch_adds, a CAS max and the epoch-slot mirror write. Every
// FM_LATENCY_SCOPE exit pays this on top of the clock read.
void BM_HistogramRecord(benchmark::State& state) {
  LatencyRecorder& recorder = LatencyRegistry::Get("bench.record");
  int64_t v = 1;
  for (auto _ : state) {
    recorder.Record(v);
    v = (v * 2862933555777941757LL + 3037000493LL) & 0xFFFFFFF;  // vary buckets
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HistogramRecord);

// ------------------------------------------------- fairmove.bench.v1 out --

/// Renders the console table exactly as BENCHMARK_MAIN() would while
/// collecting every finished per-iteration run for the JSON document.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    int64_t iterations = 0;
    double real_ns_per_iter = 0.0;
    double cpu_ns_per_iter = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.real_ns_per_iter = run.real_accumulated_time / iters * 1e9;
      row.cpu_ns_per_iter = run.cpu_accumulated_time / iters * 1e9;
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace_back(name, counter.value);
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// One benchmark entry per row, through the obs JSON builders so the
/// document obeys the same escaping/number rules as every telemetry file.
bool WriteBenchJson(const std::string& path,
                    const std::vector<CollectingReporter::Row>& rows) {
  JsonArray benchmarks;
  for (const CollectingReporter::Row& row : rows) {
    JsonObject entry;
    entry.Set("name", row.name)
        .Set("iterations", row.iterations)
        .Set("real_ns_per_iter", row.real_ns_per_iter)
        .Set("cpu_ns_per_iter", row.cpu_ns_per_iter);
    JsonObject counters;
    for (const auto& [name, value] : row.counters) counters.Set(name, value);
    entry.SetRaw("counters", counters.empty() ? "{}" : counters.Str());
    benchmarks.PushRaw(entry.Str());
  }
  JsonObject doc;
  doc.Set("schema", "fairmove.bench.v1");
  // What bench_gate compares: cpu time excludes other-process noise that
  // wall time picks up on a shared CI box.
  doc.Set("gate_metric", "cpu_ns_per_iter");
  doc.SetRaw("benchmarks", benchmarks.empty() ? "[]" : benchmarks.Str());
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << doc.Str() << "\n";
  return static_cast<bool>(out.flush());
}

}  // namespace
}  // namespace fairmove

int main(int argc, char** argv) {
  // Peel off our own --json=PATH before google-benchmark sees the flags
  // (it rejects arguments it does not recognise).
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  fairmove::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    if (!fairmove::WriteBenchJson(json_path, reporter.rows())) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu benchmark entries to %s\n",
                 reporter.rows().size(), json_path.c_str());
  }
  return 0;
}
