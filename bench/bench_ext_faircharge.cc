// Extension experiment (paper §VI-B critique of reference [16]): a
// FairCharge-style *charging-only* recommender minimises charging idle time
// but "neglect[s] overall revenue". Compares GT, FairCharge and FairMove:
// FairCharge should post a strong PRIT but little PIPE/PRCT; the
// displacement system should deliver both.

#include <cstdio>

#include "bench_common.h"
#include "fairmove/common/csv.h"

int main() {
  using namespace fairmove;
  bench::BenchSetup setup = bench::MakeSetup(0.08, 16, 2);
  bench::PrintHeader(
      "Extension (SVI-B) — charging-only recommender vs displacement",
      setup);
  auto system = bench::BuildSystem(setup.config);
  Evaluator evaluator = system->MakeEvaluator();
  const auto results = evaluator.Run(
      {PolicyKind::kFairCharge, PolicyKind::kFairMove});

  Table table({"method", "PRIT", "PRCT", "PIPE", "PIPF", "idle mean",
               "mean PE"});
  for (const MethodResult& r : results) {
    table.Row()
        .Str(r.name)
        .Pct(r.vs_gt.prit)
        .Pct(r.vs_gt.prct)
        .Pct(r.vs_gt.pipe)
        .Pct(r.vs_gt.pipf)
        .Num(r.metrics.charge_idle_min.empty()
                 ? 0.0
                 : r.metrics.charge_idle_min.Mean(),
             1)
        .Num(r.metrics.pe.Mean(), 1)
        .Done();
  }
  std::printf("%s\n", table.ToAlignedText().c_str());
  std::printf("reading: queue-aware station choice alone adds little once "
              "drivers already balk at full stations; it never addresses "
              "revenue. The displacement system moves both idle time and "
              "profit (the paper's SVI-B case against charging-only "
              "scheduling).\n");
  return 0;
}
