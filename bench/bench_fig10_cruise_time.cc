// Fig 10: per-trip cruise time under every displacement method (boxplot
// rows). Paper headline: GT median 6.5 min -> FairMove 5.4 min, with a
// smaller variance under FairMove.

#include <cstdio>

#include "bench_common.h"
#include "fairmove/common/csv.h"

int main() {
  using namespace fairmove;
  bench::BenchSetup setup = bench::MakeSetup(0.08, 20, 2);
  bench::PrintHeader("Fig 10 — per-trip cruise time by method", setup);
  auto system = bench::BuildSystem(setup.config);
  const auto results = bench::RunSixMethodComparison(*system);

  Table table({"method", "min", "q1", "median", "q3", "p90", "mean"});
  for (const MethodResult& r : results) {
    if (r.metrics.trip_cruise_min.empty()) continue;
    const auto box = r.metrics.trip_cruise_min.Box();
    table.Row()
        .Str(r.name)
        .Num(box.min, 1)
        .Num(box.q1, 1)
        .Num(box.median, 1)
        .Num(box.q3, 1)
        .Num(r.metrics.trip_cruise_min.Percentile(90), 1)
        .Num(r.metrics.trip_cruise_min.Mean(), 1)
        .Done();
  }
  std::printf("%s\n", table.ToAlignedText().c_str());
  std::printf("paper shape: every centralized method cuts the median vs GT "
              "(6.5 -> 5.4 for FairMove) and FairMove also shrinks the "
              "spread.\n");
  return 0;
}
