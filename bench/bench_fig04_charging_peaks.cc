// Fig 4: number of charging events started per hour of day. Paper
// headline: intensive charging peaks during the low-price windows
// 2:00-6:00, 12:00-14:00 and 17:00-18:00.

#include <cstdio>

#include "bench_common.h"
#include "fairmove/common/csv.h"
#include "fairmove/data/analysis.h"
#include "fairmove/pricing/tou_tariff.h"

int main() {
  using namespace fairmove;
  bench::BenchSetup setup = bench::MakeSetup(0.1, 0, 2);
  bench::PrintHeader("Fig 4 — charging events per hour vs TOU price", setup);
  auto system = bench::BuildSystem(setup.config);
  bench::RunGroundTruthTrace(*system, setup.env.days);

  const auto shares = ChargeStartShareByHour(system->sim());
  const TouTariff tariff = TouTariff::Shenzhen();
  Table table({"hour", "price period", "share of charge starts", "bar"});
  for (int h = 0; h < kHoursPerDay; ++h) {
    const double share = shares[static_cast<size_t>(h)];
    table.Row()
        .Str(std::to_string(h) + ":00")
        .Str(PricePeriodName(tariff.PeriodAt(TimeSlot(h * kSlotsPerHour))))
        .Pct(share)
        .Str(std::string(static_cast<size_t>(share * 200.0), '#'))
        .Done();
  }
  std::printf("%s\n", table.ToAlignedText().c_str());

  double valley = 0.0;
  for (int h : {2, 3, 4, 5, 12, 13, 17}) valley += shares[h];
  std::printf("share of charging started in the paper's peak windows "
              "(2-6, 12-14, 17-18 h): %.1f%% of all events in %.1f%% of "
              "the day\n",
              valley * 100.0, 7.0 / 24.0 * 100.0);
  return 0;
}
