// Fig 14: per-taxi hourly profit efficiency under every method (boxplot
// rows). Paper headline: GT median 45.2 -> FairMove 53.1, with smaller
// variance between taxis under FairMove.

#include <cstdio>

#include "bench_common.h"
#include "fairmove/common/csv.h"

int main() {
  using namespace fairmove;
  bench::BenchSetup setup = bench::MakeSetup(0.08, 20, 2);
  bench::PrintHeader("Fig 14 — hourly PE distribution by method", setup);
  auto system = bench::BuildSystem(setup.config);
  const auto results = bench::RunSixMethodComparison(*system);

  Table table({"method", "p10", "q1", "median", "q3", "p90", "variance"});
  for (const MethodResult& r : results) {
    table.Row()
        .Str(r.name)
        .Num(r.metrics.pe.Percentile(10), 1)
        .Num(r.metrics.pe.Percentile(25), 1)
        .Num(r.metrics.pe.Median(), 1)
        .Num(r.metrics.pe.Percentile(75), 1)
        .Num(r.metrics.pe.Percentile(90), 1)
        .Num(r.metrics.pf, 1)
        .Done();
  }
  std::printf("%s\n", table.ToAlignedText().c_str());
  std::printf("paper shape: FairMove lifts the median (45.2 -> 53.1) AND "
              "tightens the spread; SD2 slightly lowers the median.\n");
  return 0;
}
