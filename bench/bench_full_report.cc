// One-stop evaluation: trains the six methods once and renders *every*
// Section-IV artefact (Tables II/III, Figs 10-16) into a single markdown
// report — the efficient alternative to running each per-figure bench
// (which retrains per binary). Writes fairmove_report.md next to the
// terminal output; `--json=<path>` additionally emits the comparison as
// machine-readable JSON (schema "fairmove.report.v1").

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "fairmove/common/flags.h"
#include "fairmove/core/report.h"

int main(int argc, char** argv) {
  using namespace fairmove;
  auto flags_or = Flags::Parse(argc, argv, {"json"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\nusage: %s [--json=<path>]\n",
                 flags_or.status().ToString().c_str(), argv[0]);
    return 1;
  }
  const Flags flags = std::move(flags_or).value();
  bench::BenchSetup setup = bench::MakeSetup(0.08, 20, 2);
  bench::PrintHeader("consolidated Section-IV report (one training run)",
                     setup);
  auto system = bench::BuildSystem(setup.config);
  const auto results = bench::RunSixMethodComparison(*system);

  ReportWriter report(results);
  std::printf("%s", report.ToMarkdown().c_str());

  const char* out = std::getenv("FAIRMOVE_REPORT_PATH");
  const std::string path = out != nullptr ? out : "fairmove_report.md";
  if (Status s = report.WriteFile(path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nreport written to %s\n", path.c_str());

  if (flags.Has("json")) {
    const std::string json_path = flags.GetString("json");
    if (json_path.empty()) {
      std::fprintf(stderr, "--json needs a path (--json=<path>)\n");
      return 1;
    }
    if (Status s = report.WriteJsonFile(json_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return 0;
}
