// One-stop evaluation: trains the six methods once and renders *every*
// Section-IV artefact (Tables II/III, Figs 10-16) into a single markdown
// report — the efficient alternative to running each per-figure bench
// (which retrains per binary). Writes fairmove_report.md next to the
// terminal output; `--json=<path>` additionally emits the comparison as
// machine-readable JSON (schema "fairmove.report.v1").
//
// `--racing` replaces the single comparison run with a racing comparison
// (core/racing.h, per-arm budget --max-replicas, default 4): the report's
// figures render from the replica-0 rows (every arm races replica 0), and
// the racing table — replicas spent per method, eliminations, budget
// saving — is printed after the report.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "fairmove/common/flags.h"
#include "fairmove/core/report.h"

int main(int argc, char** argv) {
  using namespace fairmove;
  std::vector<std::string> known = bench::RacingFlagNames();
  known.push_back("json");
  auto flags_or = Flags::Parse(argc, argv, known);
  if (!flags_or.ok()) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--racing] [--json=<path>] [racing knobs]\n",
                 flags_or.status().ToString().c_str(), argv[0]);
    return 1;
  }
  const Flags flags = std::move(flags_or).value();
  RacingConfig racing;
  racing.max_replicas = 4;  // the report trains 20 episodes/method per cell
  if (Status s = bench::ApplyRacingFlags(flags, &racing); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto is_racing = flags.GetBool("racing", false);
  if (!is_racing.ok()) {
    std::fprintf(stderr, "%s\n", is_racing.status().ToString().c_str());
    return 1;
  }
  bench::BenchSetup setup = bench::MakeSetup(0.08, 20, 2);

  std::vector<MethodResult> results;
  if (*is_racing) {
    bench::PrintHeader(
        "consolidated Section-IV report (racing comparison, per-arm "
        "budget " + std::to_string(racing.max_replicas) + ")",
        setup);
    auto raced_or = RunRacingComparison(
        setup.config, FairMoveSystem::AllMethods(), racing);
    if (!raced_or.ok()) {
      std::fprintf(stderr, "%s\n", raced_or.status().ToString().c_str());
      return 1;
    }
    results = raced_or->first_replica;
    std::printf("%s\n",
                raced_or->outcome.ToTable(racing.bound, racing.delta)
                    .ToAlignedText()
                    .c_str());
    std::printf("racing: %lld of %lld replica budget spent (%.2fx saving)\n\n",
                static_cast<long long>(raced_or->outcome.replicas_spent),
                static_cast<long long>(raced_or->outcome.fixed_budget),
                raced_or->outcome.SavingsFactor());
    EmitRacingTelemetry("full_report", racing, raced_or->outcome);
  } else {
    bench::PrintHeader("consolidated Section-IV report (one training run)",
                       setup);
    auto system = bench::BuildSystem(setup.config);
    results = bench::RunSixMethodComparison(*system);
  }

  ReportWriter report(results);
  std::printf("%s", report.ToMarkdown().c_str());

  const char* out = std::getenv("FAIRMOVE_REPORT_PATH");
  const std::string path = out != nullptr ? out : "fairmove_report.md";
  if (Status s = report.WriteFile(path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nreport written to %s\n", path.c_str());

  if (flags.Has("json")) {
    const std::string json_path = flags.GetString("json");
    if (json_path.empty()) {
      std::fprintf(stderr, "--json needs a path (--json=<path>)\n");
      return 1;
    }
    if (Status s = report.WriteJsonFile(json_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return 0;
}
