// Model persistence workflow: train FairMove (CMA2C), save the actor/critic
// to disk, restore them into a fresh policy, and verify the restored policy
// evaluates identically — how a deployment would ship a trained
// displacement model.
//
//   ./build/examples/train_and_save [--model=/tmp/fairmove_model.bin]

#include <cstdio>

#include "fairmove/common/flags.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/rl/cma2c_policy.h"

int main(int argc, char** argv) {
  using namespace fairmove;

  auto flags_or = Flags::Parse(argc, argv, {"model", "scale", "episodes"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = flags_or.value();
  const std::string model_path =
      flags.GetString("model", "/tmp/fairmove_model.bin");
  const double scale = flags.GetDouble("scale", 0.06).value_or(0.06);
  const int episodes =
      static_cast<int>(flags.GetInt("episodes", 6).value_or(6));

  FairMoveConfig config = FairMoveConfig::FullShenzhen().Scaled(scale);
  config.trainer.episodes = episodes;
  config.eval.days = 1;
  auto system_or = FairMoveSystem::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  // --- train + save -------------------------------------------------------
  Cma2cPolicy::Options options;
  options.seed = 7055;
  Cma2cPolicy trained(system->sim(), options);
  Trainer trainer = system->MakeTrainer();
  std::printf("training CMA2C for %d episode(s)...\n", episodes);
  trainer.Train(&trained);
  if (Status s = trained.SaveModel(model_path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("model saved to %s\n", model_path.c_str());

  const auto eval_trained = trainer.RunEvaluationEpisode(
      &trained, config.eval.seed, kSlotsPerDay);

  // --- restore into a fresh policy ----------------------------------------
  Cma2cPolicy restored(system->sim(), options);
  if (Status s = restored.LoadModel(model_path); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto eval_restored = trainer.RunEvaluationEpisode(
      &restored, config.eval.seed, kSlotsPerDay);

  std::printf("\n%-22s %14s %14s\n", "", "trained", "restored");
  std::printf("%-22s %14.4f %14.4f\n", "eval avg reward",
              eval_trained.avg_reward, eval_restored.avg_reward);
  std::printf("%-22s %14.2f %14.2f\n", "fleet mean PE",
              eval_trained.fleet_pe_mean, eval_restored.fleet_pe_mean);
  std::printf("%-22s %14.2f %14.2f\n", "fleet PF",
              eval_trained.fleet_pf, eval_restored.fleet_pf);

  const bool identical =
      eval_trained.avg_reward == eval_restored.avg_reward &&
      eval_trained.fleet_pe_mean == eval_restored.fleet_pe_mean;
  std::printf("\nrestored policy evaluates %s\n",
              identical ? "bit-identically — persistence round trip OK"
                        : "DIFFERENTLY — persistence bug!");
  return identical ? 0 : 1;
}
