// Quickstart: build a small synthetic city, train FairMove (CMA2C) for a
// couple of episodes, and compare it with the no-displacement ground truth.
//
//   ./build/examples/quickstart
//
// Env overrides: FAIRMOVE_SCALE, FAIRMOVE_EPISODES, FAIRMOVE_SEED,
// FAIRMOVE_DAYS (see fairmove/common/config.h).

#include <cstdio>

#include "fairmove/common/config.h"
#include "fairmove/core/fairmove.h"

int main() {
  using namespace fairmove;

  EnvOverrides env;
  env.scale = 0.06;
  env.episodes = 2;
  env.days = 1;
  if (Status s = env.LoadFromEnv(); !s.ok()) {
    std::fprintf(stderr, "bad environment: %s\n", s.ToString().c_str());
    return 1;
  }

  FairMoveConfig config = FairMoveConfig::FullShenzhen().Scaled(env.scale);
  config.trainer.episodes = env.episodes;
  config.eval.days = env.days;
  if (env.seed != 0) config.sim.seed = env.seed;

  auto system_or = FairMoveSystem::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  std::printf("city: %d regions, %d stations (%d charge points), %d taxis\n",
              system->city().num_regions(), system->city().num_stations(),
              system->city().total_charge_points(),
              system->sim().num_taxis());

  Evaluator evaluator = system->MakeEvaluator();
  MethodResult gt = evaluator.RunGroundTruth();
  std::printf("\n[GT]   mean PE %.1f CNY/h | PF (variance) %.1f | "
              "service rate %.1f%%\n",
              gt.metrics.pe.Mean(), gt.metrics.pf,
              gt.metrics.ServiceRate() * 100.0);

  auto fairmove_policy =
      MakePolicy(PolicyKind::kFairMove, system->sim(), 7000);
  MethodResult fm = evaluator.RunOne(fairmove_policy.get(), gt.metrics);
  std::printf("[FairMove] mean PE %.1f CNY/h | PF %.1f | service rate "
              "%.1f%%\n",
              fm.metrics.pe.Mean(), fm.metrics.pf,
              fm.metrics.ServiceRate() * 100.0);
  std::printf("\nvs GT:  PIPE %+.1f%%  PIPF %+.1f%%  PRCT %+.1f%%  "
              "PRIT %+.1f%%\n",
              fm.vs_gt.pipe * 100.0, fm.vs_gt.pipf * 100.0,
              fm.vs_gt.prct * 100.0, fm.vs_gt.prit * 100.0);
  return 0;
}
