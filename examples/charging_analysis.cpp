// Walks through the paper's five data-driven findings (§II-C) on a
// generated dataset, printing each finding's headline statistic next to
// the paper's — the motivation section of the paper as a runnable program.
// Also prints the station-utilization heat rows used for infrastructure
// planning.
//
//   ./build/examples/charging_analysis [--scale=0.1] [--days=2]

#include <cstdio>

#include "fairmove/common/flags.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/data/analysis.h"
#include "fairmove/geo/geojson.h"
#include "fairmove/pricing/tou_tariff.h"

int main(int argc, char** argv) {
  using namespace fairmove;

  auto flags_or = Flags::Parse(argc, argv, {"scale", "days", "geojson"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = flags_or.value();
  const double scale = flags.GetDouble("scale", 0.1).value_or(0.1);
  const int days = static_cast<int>(flags.GetInt("days", 2).value_or(2));

  FairMoveConfig config = FairMoveConfig::FullShenzhen().Scaled(scale);
  auto system_or = FairMoveSystem::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  if (flags.Has("geojson")) {
    const std::string path = flags.GetString("geojson", "/tmp/city.geojson");
    if (Status s = WriteCityGeoJson(system->city(), path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote city map to %s\n", path.c_str());
  }

  auto gt = MakePolicy(PolicyKind::kGroundTruth, system->sim(), 7000);
  system->sim().RunDays(gt.get(), days);
  const Simulator& sim = system->sim();

  std::printf("=== The five data-driven findings of paper §II-C ===\n\n");

  // (i) Long charging processes.
  const Sample durations = ChargeDurationSample(sim);
  std::printf("(i)  Charging is slow: %.1f%% of %zu charge events last "
              "45-120 min (paper: 73.5%%); median %.0f min vs a 3-5 min "
              "gas refuel.\n\n",
              durations.FractionIn(45, 120) * 100.0, durations.size(),
              durations.Median());

  // (ii) Price-driven charging peaks.
  const auto shares = ChargeStartShareByHour(sim);
  double valley = 0.0;
  for (int h : {2, 3, 4, 5, 12, 13, 17}) valley += shares[h];
  std::printf("(ii) TOU pricing concentrates charging: %.0f%% of sessions "
              "start inside the off-peak windows (2-6, 12-14, 17-18 h) "
              "that cover %.0f%% of the day (paper: \"intensive charging "
              "peaks\" exactly there).\n\n",
              valley * 100.0, 7.0 / 24.0 * 100.0);

  // (iii) Idle-time reduction != more serving time.
  const Sample first = FirstCruiseSample(sim);
  std::printf("(iii) Charging somewhere \"fast\" can still cost you: "
              "%.0f%% of taxis find a passenger within 10 min of "
              "unplugging (paper: 40%%), but %.0f%% cruise > 1 h "
              "(paper: 10%%). Per-station medians differ by:\n",
              first.CdfAt(10) * 100.0, (1.0 - first.CdfAt(60)) * 100.0);
  const auto by_station = FirstCruiseByStation(sim, 10);
  double lo = 1e9, hi = 0.0;
  for (const auto& [station, sample] : by_station) {
    lo = std::min(lo, sample.Median());
    hi = std::max(hi, sample.Median());
  }
  if (!by_station.empty()) {
    std::printf("      %.1f min (best station) to %.1f min (worst) — "
                "a %.1fx spread across %zu stations.\n\n",
                lo, hi, hi / std::max(1.0, lo), by_station.size());
  }

  // (iv) Spatially skewed per-trip revenue.
  const auto revenue = PerTripRevenueByRegion(sim, 0, 24);
  Sample revenue_sample;
  for (double v : revenue) {
    if (v > 0.0) revenue_sample.Add(v);
  }
  std::printf("(iv) Per-trip revenue is spatially skewed: region averages "
              "span %.0f to %.0f CNY (p10 %.0f / p90 %.0f; paper: "
              "\"several CNY to over 100 CNY\").\n\n",
              revenue_sample.Percentile(0), revenue_sample.Percentile(100),
              revenue_sample.Percentile(10), revenue_sample.Percentile(90));

  // (v) PE inequality.
  const Sample pe = HourlyPeSample(sim);
  std::printf("(v)  Driver earnings are unequal: p20 %.1f vs p80 %.1f "
              "CNY/h — the top quintile out-earns the bottom by %.0f%% "
              "(paper: 36 vs 51, a 42%% gap).\n\n",
              pe.Percentile(20), pe.Percentile(80),
              PeP80OverP20Gap(sim) * 100.0);

  // Bonus: station utilization planning rows (peak-hour occupancy).
  std::printf("=== Station plug occupancy by hour (top 5 stations) ===\n");
  const auto utilization = StationUtilizationByHour(sim, days);
  for (StationId s = 0;
       s < std::min<StationId>(5, sim.city().num_stations()); ++s) {
    std::printf("%-6s", sim.city().station(s).name.c_str());
    for (int h = 0; h < kHoursPerDay; h += 2) {
      std::printf(" %3.0f%%",
                  utilization[static_cast<size_t>(s)]
                             [static_cast<size_t>(h)] * 100.0);
    }
    std::printf("\n");
  }
  std::printf("(columns: every 2nd hour from 00:00)\n");
  return 0;
}
