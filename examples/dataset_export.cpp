// Exports the five synthetic datasets (paper Table I) as CSV files — the
// proprietary-data substitution in a form downstream tooling can consume.
//
//   ./build/examples/dataset_export [output_dir]     (default /tmp)

#include <cstdio>
#include <string>

#include "fairmove/common/config.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/data/generator.h"
#include "fairmove/data/records.h"
#include "fairmove/pricing/tou_tariff.h"

int main(int argc, char** argv) {
  using namespace fairmove;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  EnvOverrides env;
  env.scale = 0.06;
  env.days = 1;
  if (Status s = env.LoadFromEnv(); !s.ok()) {
    std::fprintf(stderr, "bad environment: %s\n", s.ToString().c_str());
    return 1;
  }

  FairMoveConfig config = FairMoveConfig::FullShenzhen().Scaled(env.scale);
  if (env.seed != 0) config.sim.seed = env.seed;
  auto system_or = FairMoveSystem::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  auto gt = MakePolicy(PolicyKind::kGroundTruth, system->sim(), 7000);
  system->sim().RunDays(gt.get(), env.days);

  DatasetGenerator generator(&system->sim(), 42);
  struct Export {
    const char* file;
    Table table;
  };
  Export exports[] = {
      {"fairmove_gps.csv",
       GpsRecordsTable(generator.GenerateGps(/*interval_s=*/60, 200000))},
      {"fairmove_transactions.csv",
       TransactionRecordsTable(generator.GenerateTransactions())},
      {"fairmove_stations.csv",
       StationRecordsTable(generator.GenerateStations())},
      {"fairmove_regions.csv",
       RegionRecordsTable(generator.GenerateRegions())},
  };
  for (const Export& e : exports) {
    const std::string path = out_dir + "/" + e.file;
    if (Status s = e.table.WriteCsv(path); !s.ok()) {
      std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %-32s %8zu rows\n", path.c_str(), e.table.num_rows());
  }

  // (v) Charging pricing.
  const TouTariff tariff = TouTariff::Shenzhen();
  Table pricing({"hour", "period", "cny_per_kwh"});
  for (int h = 0; h < kHoursPerDay; ++h) {
    const TimeSlot slot(h * kSlotsPerHour);
    pricing.Row()
        .Int(h)
        .Str(PricePeriodName(tariff.PeriodAt(slot)))
        .Num(tariff.RateAt(slot), 2)
        .Done();
  }
  const std::string path = out_dir + "/fairmove_pricing.csv";
  if (Status s = pricing.WriteCsv(path); !s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %-32s %8zu rows\n", path.c_str(), pricing.num_rows());
  return 0;
}
