// Trains and evaluates all six displacement strategies of the paper (GT,
// SD2, TQL, DQN, TBA, FairMove/CMA2C) on the same demand realisation and
// prints the headline comparison (Tables II/III, Figs 14-16).
//
//   ./build/examples/policy_comparison

#include <cstdio>

#include "fairmove/common/config.h"
#include "fairmove/common/csv.h"
#include "fairmove/core/fairmove.h"

int main() {
  using namespace fairmove;

  EnvOverrides env;
  env.scale = 0.08;
  env.episodes = 8;
  env.days = 2;
  if (Status s = env.LoadFromEnv(); !s.ok()) {
    std::fprintf(stderr, "bad environment: %s\n", s.ToString().c_str());
    return 1;
  }

  FairMoveConfig config = FairMoveConfig::FullShenzhen().Scaled(env.scale);
  config.trainer.episodes = env.episodes;
  config.eval.days = env.days;
  if (env.seed != 0) {
    config.sim.seed = env.seed;
    config.trainer.seed_base = 9000 + env.seed * 1000;
    config.eval.seed = 424242 + env.seed;
  }

  auto system_or = FairMoveSystem::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();
  std::printf("city: %d regions, %d stations, %d taxis | %d training "
              "episodes, %d eval days\n\n",
              system->city().num_regions(), system->city().num_stations(),
              system->sim().num_taxis(), config.trainer.episodes,
              config.eval.days);

  const auto results = system->RunComparison(FairMoveSystem::AllMethods());

  for (const MethodResult& r : results) {
    if (r.training_stats.empty()) continue;
    std::printf("%-9s training avg-reward per episode:", r.name.c_str());
    for (const auto& e : r.training_stats) {
      std::printf(" %.3f", e.avg_reward);
    }
    std::printf("  (eval %.3f)\n", r.eval_stats.avg_reward);
  }
  std::printf("\n");

  Table table({"method", "PE mean", "PE median", "PF(var)", "PRCT", "PRIT",
               "PIPE", "PIPF", "cruise med", "idle mean", "svc rate"});
  for (const MethodResult& r : results) {
    table.Row()
        .Str(r.name)
        .Num(r.metrics.pe.Mean(), 1)
        .Num(r.metrics.pe.Median(), 1)
        .Num(r.metrics.pf, 1)
        .Pct(r.vs_gt.prct)
        .Pct(r.vs_gt.prit)
        .Pct(r.vs_gt.pipe)
        .Pct(r.vs_gt.pipf)
        .Num(r.metrics.trip_cruise_min.empty()
                 ? 0.0
                 : r.metrics.trip_cruise_min.Median(),
             1)
        .Num(r.metrics.charge_idle_min.empty()
                 ? 0.0
                 : r.metrics.charge_idle_min.Mean(),
             1)
        .Pct(r.metrics.ServiceRate())
        .Done();
  }
  std::printf("%s\n", table.ToAlignedText().c_str());
  return 0;
}
