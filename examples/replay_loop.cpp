// The "data-driven" loop of the paper, end to end:
//   1. run a fleet and record its transaction log (the Table-I feed),
//   2. estimate an *empirical* demand surface from those records alone
//      (EmpiricalDemandModel — no access to the generative model),
//   3. rebuild the simulator on the empirical surface and replay.
// The replayed fleet statistics should track the originals closely — the
// consistency check behind using recorded data as the environment.
//
//   ./build/examples/replay_loop

#include <cstdio>

#include "fairmove/common/config.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/data/empirical_demand.h"
#include "fairmove/data/generator.h"
#include "fairmove/rl/gt_policy.h"

int main() {
  using namespace fairmove;

  EnvOverrides env;
  env.scale = 0.08;
  env.days = 3;
  if (Status s = env.LoadFromEnv(); !s.ok()) {
    std::fprintf(stderr, "bad environment: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- 1. record -----------------------------------------------------------
  FairMoveConfig config = FairMoveConfig::FullShenzhen().Scaled(env.scale);
  if (env.seed != 0) config.sim.seed = env.seed;
  auto system_or = FairMoveSystem::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();
  GtPolicy recorder;
  system->sim().RunDays(&recorder, env.days);
  DatasetGenerator generator(&system->sim(), 42);
  const auto transactions = generator.GenerateTransactions();
  std::printf("recorded %zu transactions over %d day(s)\n",
              transactions.size(), env.days);
  const FleetMetrics original = ComputeFleetMetrics(system->sim());

  // --- 2. estimate ---------------------------------------------------------
  EmpiricalDemandModel::Options options;
  options.days = env.days;
  auto empirical_or = EmpiricalDemandModel::FromTransactions(
      &system->city(), transactions, options);
  if (!empirical_or.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 empirical_or.status().ToString().c_str());
    return 1;
  }
  const EmpiricalDemandModel empirical = std::move(empirical_or).value();
  std::printf("estimated demand surface: %.0f trips/day "
              "(served in the recording: %.0f/day)\n",
              empirical.TotalTripsPerDay(),
              static_cast<double>(original.trips) / env.days);

  // --- 3. replay -----------------------------------------------------------
  auto replay_sim_or = Simulator::Create(&system->city(), &empirical,
                                         TouTariff::Shenzhen(), config.sim);
  if (!replay_sim_or.ok()) {
    std::fprintf(stderr, "replay setup failed: %s\n",
                 replay_sim_or.status().ToString().c_str());
    return 1;
  }
  auto replay_sim = std::move(replay_sim_or).value();
  GtPolicy replayer;
  replay_sim->RunDays(&replayer, env.days);
  const FleetMetrics replay = ComputeFleetMetrics(*replay_sim);

  std::printf("\n%-28s %12s %12s\n", "metric", "recorded", "replayed");
  auto row = [](const char* name, double a, double b) {
    std::printf("%-28s %12.1f %12.1f\n", name, a, b);
  };
  row("trips per taxi-day",
      static_cast<double>(original.trips) /
          (env.days * original.pe.size()),
      static_cast<double>(replay.trips) / (env.days * replay.pe.size()));
  row("fleet mean PE (CNY/h)", original.pe.Mean(), replay.pe.Mean());
  row("PE variance (PF)", original.pf, replay.pf);
  row("median trip cruise (min)",
      original.trip_cruise_min.empty() ? 0 : original.trip_cruise_min.Median(),
      replay.trip_cruise_min.empty() ? 0 : replay.trip_cruise_min.Median());
  row("charge events per taxi-day",
      static_cast<double>(original.charge_events) /
          (env.days * original.pe.size()),
      static_cast<double>(replay.charge_events) /
          (env.days * replay.pe.size()));

  const double pe_drift =
      std::abs(replay.pe.Mean() - original.pe.Mean()) / original.pe.Mean();
  std::printf("\nfleet PE drift after the record->estimate->replay round "
              "trip: %.1f%%\n",
              pe_drift * 100.0);
  return pe_drift < 0.15 ? 0 : 1;
}
