// Simulates one day of the fleet under the ground-truth behaviour policy
// and prints the mobility decomposition of paper Fig 1 plus the §II-C
// data-driven statistics: time split, charge-duration distribution, first
// cruise time, idle time, PE percentiles.
//
//   ./build/examples/fleet_day

#include <cstdio>

#include "fairmove/common/config.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/data/analysis.h"

int main() {
  using namespace fairmove;

  EnvOverrides env;
  env.scale = 0.1;
  env.days = 2;
  if (Status s = env.LoadFromEnv(); !s.ok()) {
    std::fprintf(stderr, "bad environment: %s\n", s.ToString().c_str());
    return 1;
  }

  FairMoveConfig config = FairMoveConfig::FullShenzhen().Scaled(env.scale);
  if (env.seed != 0) config.sim.seed = env.seed;
  auto system_or = FairMoveSystem::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();
  Simulator& sim = system->sim();

  std::printf("city: %d regions, %d stations (%d points), %d taxis, "
              "%.0f trips/day demanded\n",
              system->city().num_regions(), system->city().num_stations(),
              system->city().total_charge_points(), sim.num_taxis(),
              system->demand().TotalTripsPerDay());

  auto gt = MakePolicy(PolicyKind::kGroundTruth, sim, 7000);
  sim.Reset();
  sim.RunDays(gt.get(), env.days);

  FleetMetrics m = ComputeFleetMetrics(sim);
  const double taxi_days =
      static_cast<double>(sim.num_taxis()) * env.days;
  std::printf("\n--- fleet day (per taxi-day averages) ---\n");
  std::printf("trips served      %.1f   (requests %.1f, expired %.1f)\n",
              m.trips / taxi_days, m.total_requests / taxi_days,
              m.expired_requests / taxi_days);
  std::printf("revenue           %.0f CNY   charge cost %.0f CNY\n",
              m.revenue_cny / taxi_days, m.charge_cost_cny / taxi_days);
  std::printf("charge events     %.2f   strandings %.3f\n",
              m.charge_events / taxi_days, m.strandings / taxi_days);
  const double total_min = m.cruise_min + m.serve_min + m.idle_min +
                           m.charge_min;
  std::printf("time split        cruise %.1f%%  serve %.1f%%  idle %.1f%%  "
              "charge %.1f%%\n",
              100.0 * m.cruise_min / total_min, 100.0 * m.serve_min / total_min,
              100.0 * m.idle_min / total_min, 100.0 * m.charge_min / total_min);

  std::printf("\n--- profit efficiency (Fig 8) ---\n");
  std::printf("PE mean %.1f  median %.1f  p20 %.1f  p80 %.1f  "
              "p80/p20 gap %.0f%%  PF(var) %.1f  gini %.3f\n",
              m.pe.Mean(), m.pe.Median(), m.pe.Percentile(20),
              m.pe.Percentile(80), PeP80OverP20Gap(sim) * 100.0, m.pf,
              m.pe_gini);

  std::printf("\n--- cruise time (Figs 5/10) ---\n");
  if (!m.trip_cruise_min.empty()) {
    std::printf("per-trip cruise   median %.1f min  mean %.1f  p90 %.1f\n",
                m.trip_cruise_min.Median(), m.trip_cruise_min.Mean(),
                m.trip_cruise_min.Percentile(90));
  }
  if (!m.first_cruise_min.empty()) {
    std::printf("first-after-charge: <=10min %.0f%%  >60min %.0f%%  "
                "median %.1f\n",
                m.first_cruise_min.CdfAt(10.0) * 100.0,
                (1.0 - m.first_cruise_min.CdfAt(60.0)) * 100.0,
                m.first_cruise_min.Median());
  }

  std::printf("\n--- charging (Figs 3/4/12) ---\n");
  if (!m.charge_duration_min.empty()) {
    std::printf("charge duration   median %.0f min  45-120min share %.1f%%\n",
                m.charge_duration_min.Median(),
                m.charge_duration_min.FractionIn(45.0, 120.0) * 100.0);
  }
  if (!m.charge_idle_min.empty()) {
    std::printf("idle per charge   median %.0f min  mean %.0f  p75 %.0f\n",
                m.charge_idle_min.Median(), m.charge_idle_min.Mean(),
                m.charge_idle_min.Percentile(75));
  }
  std::printf("charge starts by hour (%% of all):\n  ");
  auto shares = ChargeStartShareByHour(sim);
  for (int h = 0; h < kHoursPerDay; ++h) {
    std::printf("%d:%.1f ", h, shares[static_cast<size_t>(h)] * 100.0);
  }
  std::printf("\n");

  std::printf("\n--- fleet composition over the last day (Fig 1 view) ---\n");
  std::printf("%-6s %8s %8s %8s %8s\n", "time", "cruise", "serve", "idle",
              "charge");
  const auto& snapshots = sim.trace().phase_counts();
  for (size_t i = snapshots.size() >= kSlotsPerDay
                      ? snapshots.size() - kSlotsPerDay
                      : 0;
       i < snapshots.size(); i += 2 * kSlotsPerHour) {
    const PhaseCounts& counts = snapshots[i];
    std::printf("%-6s %8d %8d %8d %8d\n",
                TimeSlot(counts.slot).ToString().c_str() + 3,
                counts.cruising, counts.serving,
                counts.to_station + counts.queuing, counts.charging);
  }

  std::printf("\n--- working cycles (Fig 1 T_cycle) ---\n");
  const auto& cycles = sim.trace().cycles();
  if (!cycles.empty()) {
    Sample cycle_h, op_share;
    for (const CycleRecord& c : cycles) {
      cycle_h.Add(c.cycle_min() / 60.0);
      if (c.cycle_min() > 0) op_share.Add(c.op_min / c.cycle_min());
    }
    std::printf("cycles %zu | median T_cycle %.1f h | median T_op share "
                "%.0f%%\n",
                cycles.size(), cycle_h.Median(),
                op_share.Median() * 100.0);
  }
  return 0;
}
