// Crash-injection harness for durable checkpointing: proves that a training
// run SIGKILLed at a random point and resumed from its checkpoint directory
// finishes bit-identical to an uninterrupted run.
//
// The parent re-execs itself (`/proc/self/exe --child ...`) to get real
// process deaths — no in-process simulation of a crash. It first times an
// uninterrupted reference run, then for each trial starts a fresh child,
// kills it after a deterministic pseudo-random fraction of the reference
// wall time, reruns the child over the surviving checkpoint directory, and
// byte-compares the result digests (final policy-state CRC, episode-stats
// CRC, final-evaluation FleetMetrics CRC) against the reference. Any
// mismatch exits non-zero.
//
// Usage: crash_harness <scratch-dir> [trials]
//   FAIRMOVE_THREADS is honoured (the CI matrix runs 1 and 4).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fairmove/common/config.h"
#include "fairmove/common/parallel.h"
#include "fairmove/common/rng.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/metrics.h"
#include "fairmove/io/atomic_file.h"
#include "fairmove/io/binary.h"
#include "fairmove/rl/cma2c_policy.h"

namespace fairmove {
namespace {

/// The child's workload: a small guarded CMA2C training run with durable
/// checkpointing, then a fixed-seed evaluation episode; digests of every
/// acceptance quantity are written atomically to `result_path`.
int RunChild(const std::string& ckpt_dir, const std::string& result_path) {
  EnvOverrides env;
  if (Status s = env.LoadFromEnv(); !s.ok()) {
    std::fprintf(stderr, "child: bad FAIRMOVE_* environment: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  if (env.threads != 0) SetGlobalThreads(env.threads);

  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 6;
  cfg.trainer.slots_per_episode = 24;
  auto system_or = FairMoveSystem::Create(cfg);
  if (!system_or.ok()) {
    std::fprintf(stderr, "child: setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  Cma2cPolicy::Options opt;
  opt.actor_hidden = {8};
  opt.critic_hidden = {8};
  opt.batch_size = 64;
  opt.actor_warmup_batches = 0;
  Cma2cPolicy policy(system->sim(), opt);
  policy.EnableDivergenceGuard();

  Trainer trainer = system->MakeTrainer();
  CheckpointConfig ckpt;
  ckpt.dir = ckpt_dir;
  ckpt.every = 1;
  ckpt.retain = 3;
  std::vector<Trainer::EpisodeStats> stats;
  if (Status s = trainer.TrainGuarded(&policy, &stats, ckpt); !s.ok()) {
    std::fprintf(stderr, "child: training failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // Digest 1: final policy state, bit for bit.
  BinaryWriter model;
  if (Status s = policy.SaveState(&model); !s.ok()) {
    std::fprintf(stderr, "child: SaveState failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  // Digest 2: the full EpisodeStats history.
  BinaryWriter stats_blob;
  for (const Trainer::EpisodeStats& s : stats) {
    stats_blob.WriteF64(s.avg_reward);
    stats_blob.WriteF64(s.avg_reward_own);
    stats_blob.WriteI64(s.transitions);
    stats_blob.WriteF64(s.fleet_pe_mean);
    stats_blob.WriteF64(s.fleet_pf);
  }
  // Digest 3: FleetMetrics of a fixed-seed evaluation episode under the
  // final policy (the run's externally visible outcome).
  trainer.RunEvaluationEpisode(&policy, cfg.trainer.seed_base + 1000,
                               cfg.trainer.slots_per_episode);
  const FleetMetrics m = ComputeFleetMetrics(system->sim());
  BinaryWriter metrics;
  metrics.WriteF64(m.pe_sum);
  metrics.WriteF64(m.pf);
  metrics.WriteF64(m.pe_gini);
  metrics.WriteF64(m.cruise_min);
  metrics.WriteF64(m.serve_min);
  metrics.WriteF64(m.idle_min);
  metrics.WriteF64(m.charge_min);
  metrics.WriteF64(m.revenue_cny);
  metrics.WriteF64(m.charge_cost_cny);
  metrics.WriteI64(m.trips);
  metrics.WriteI64(m.charge_events);
  metrics.WriteI64(m.expired_requests);
  metrics.WriteI64(m.total_requests);

  char result[256];
  std::snprintf(result, sizeof(result),
                "model_crc=%08x\nstats_crc=%08x\nmetrics_crc=%08x\n"
                "episodes=%zu\n",
                Crc32(model.str()), Crc32(stats_blob.str()),
                Crc32(metrics.str()), stats.size());
  if (Status s = AtomicFileWriter(result_path).Commit(result); !s.ok()) {
    std::fprintf(stderr, "child: result write failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  return 0;
}

struct ChildRun {
  int exit_code = -1;     // -1 when killed by signal
  int term_signal = 0;
  double wall_ms = 0.0;
};

/// Forks + re-execs this binary in child mode; optionally SIGKILLs it after
/// `kill_after_ms` (< 0 = never). Returns how the child ended.
ChildRun SpawnChild(const char* self, const std::string& ckpt_dir,
                    const std::string& result_path, double kill_after_ms) {
  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid == 0) {
    execl(self, self, "--child", ckpt_dir.c_str(), result_path.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ChildRun run;
  if (pid < 0) {
    std::perror("fork");
    return run;
  }
  if (kill_after_ms >= 0.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(kill_after_ms * 1e3)));
    kill(pid, SIGKILL);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  if (WIFSIGNALED(status)) run.term_signal = WTERMSIG(status);
  return run;
}

int RunParent(const char* self, const std::string& scratch, int trials) {
  std::error_code ec;
  std::filesystem::create_directories(scratch, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create scratch dir '%s': %s\n",
                 scratch.c_str(), ec.message().c_str());
    return 1;
  }

  // Uninterrupted reference run (also calibrates the kill times).
  const std::string ref_result = scratch + "/result-ref.txt";
  const ChildRun ref = SpawnChild(self, scratch + "/ckpt-ref", ref_result,
                                  /*kill_after_ms=*/-1.0);
  if (ref.exit_code != 0) {
    std::fprintf(stderr, "reference run failed (exit %d, signal %d)\n",
                 ref.exit_code, ref.term_signal);
    return 1;
  }
  const StatusOr<std::string> want = ReadFileToString(ref_result);
  if (!want.ok()) {
    std::fprintf(stderr, "no reference result: %s\n",
                 want.status().ToString().c_str());
    return 1;
  }
  std::printf("reference: %.0f ms\n%s", ref.wall_ms, want->c_str());

  // Fixed seed: the kill points are randomized but reproducible.
  Rng rng(0xC8A54ULL);
  int failures = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::string dir = scratch + "/ckpt-" + std::to_string(trial);
    const std::string result =
        scratch + "/result-" + std::to_string(trial) + ".txt";
    // Kill somewhere in the meat of the run (20%..90% of reference time).
    const double frac = 0.2 + 0.7 * rng.NextDouble();
    const ChildRun killed = SpawnChild(self, dir, result, frac * ref.wall_ms);
    const char* fate =
        killed.term_signal == SIGKILL
            ? "killed"
            : (killed.exit_code == 0 ? "finished before the kill" : "FAILED");
    std::printf("trial %d: kill at %.0f%% of reference -> child %s\n", trial,
                100.0 * frac, fate);
    if (killed.term_signal != SIGKILL && killed.exit_code != 0) {
      ++failures;
      continue;
    }
    // Resume over the surviving checkpoint directory.
    const ChildRun resumed = SpawnChild(self, dir, result, -1.0);
    if (resumed.exit_code != 0) {
      std::fprintf(stderr, "trial %d: resume failed (exit %d)\n", trial,
                   resumed.exit_code);
      ++failures;
      continue;
    }
    const StatusOr<std::string> got = ReadFileToString(result);
    if (!got.ok() || *got != *want) {
      std::fprintf(stderr,
                   "trial %d: MISMATCH after resume\n--- want ---\n%s"
                   "--- got ---\n%s",
                   trial, want->c_str(),
                   got.ok() ? got->c_str() : got.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("trial %d: resume bit-identical to reference\n", trial);
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d/%d trial(s) failed\n", failures, trials);
    return 1;
  }
  std::printf("all %d kill-resume trial(s) bit-identical\n", trials);
  return 0;
}

}  // namespace
}  // namespace fairmove

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--child") == 0) {
    return fairmove::RunChild(argv[2], argv[3]);
  }
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <scratch-dir> [trials]\n", argv[0]);
    return 2;
  }
  const int trials = argc == 3 ? std::atoi(argv[2]) : 3;
  if (trials < 1) {
    std::fprintf(stderr, "trials must be >= 1\n");
    return 2;
  }
  return fairmove::RunParent("/proc/self/exe", argv[1], trials);
}
