// Converts fairmove observability artefacts to Chrome trace-event JSON
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing:
//
//   trace_export --flight <dump.fmfr>  [-o out.json]   real per-thread
//       timeline from an FMFR1 flight-recorder dump (crash, stall, or
//       exporter snapshot)
//   trace_export --profile <profile.json> [-o out.json] synthetic nested
//       layout of the FM_SPAN aggregate tree (FAIRMOVE_PROFILE=1 runs)
//
// Every emitted trace is re-validated (balanced B/E per lane) before it is
// written; the tool exits non-zero rather than produce a trace Perfetto
// would render misleadingly. Default output replaces the input extension
// with .trace.json next to the input.
//
// Usage: trace_export (--flight <file.fmfr> | --profile <profile.json>)
//                     [-o <out.json>]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fairmove/common/macros.h"
#include "fairmove/common/status.h"
#include "fairmove/io/atomic_file.h"
#include "fairmove/obs/flight_recorder.h"
#include "fairmove/obs/trace.h"

namespace fairmove {
namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string DefaultOutPath(const std::string& in_path) {
  std::filesystem::path p(in_path);
  p.replace_extension(".trace.json");
  return p.string();
}

Status ExportFlight(const std::string& in_path, const std::string& out_path) {
  FM_ASSIGN_OR_RETURN(const FlightDump dump, ReadFlightDumpFile(in_path));
  size_t events = 0;
  for (const FlightDumpRing& ring : dump.rings) events += ring.events.size();
  const std::string trace = FlightDumpToChromeTrace(dump);
  FM_RETURN_IF_ERROR(ValidateChromeTrace(trace));
  FM_RETURN_IF_ERROR(AtomicWriteFile(out_path, trace));
  std::printf("%s: %zu ring(s), %zu event(s), %zu name(s) -> %s\n",
              in_path.c_str(), dump.rings.size(), events, dump.names.size(),
              out_path.c_str());
  return Status::OK();
}

Status ExportProfile(const std::string& in_path, const std::string& out_path) {
  FM_ASSIGN_OR_RETURN(const std::string profile_json, ReadFile(in_path));
  FM_ASSIGN_OR_RETURN(const std::string trace,
                      ProfileJsonToChromeTrace(profile_json));
  FM_RETURN_IF_ERROR(ValidateChromeTrace(trace));
  FM_RETURN_IF_ERROR(AtomicWriteFile(out_path, trace));
  std::printf("%s -> %s\n", in_path.c_str(), out_path.c_str());
  return Status::OK();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--flight <dump.fmfr> | --profile <profile.json>) "
               "[-o <out.json>]\n",
               argv0);
  return 2;
}

}  // namespace
}  // namespace fairmove

int main(int argc, char** argv) {
  std::string flight_path;
  std::string profile_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--flight") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (std::strcmp(arg, "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(arg, "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return fairmove::Usage(argv[0]);
    }
  }
  const bool flight = !flight_path.empty();
  const bool profile = !profile_path.empty();
  if (flight == profile) return fairmove::Usage(argv[0]);  // exactly one mode
  const std::string in_path = flight ? flight_path : profile_path;
  if (out_path.empty()) out_path = fairmove::DefaultOutPath(in_path);
  const fairmove::Status status =
      flight ? fairmove::ExportFlight(in_path, out_path)
             : fairmove::ExportProfile(in_path, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
