// Perf regression gate over fairmove.bench.v1 documents (the ctest
// `perfgate` label). Compares a fresh bench_perf_microbench run against the
// committed BENCH_perf.json baseline and fails — with a diff table naming
// every offending benchmark — when any gated counter regresses past the
// tolerance.
//
// Usage:
//   bench_gate --baseline=BENCH_perf.json --bench=path/to/bench_perf_microbench
//              [--tolerance=1.5] [--filter=REGEX] [--fresh-out=PATH]
//   bench_gate --baseline=BENCH_perf.json --fresh=run.json [--tolerance=1.5]
//
// Modes: `--bench` spawns the benchmark binary with a filter restricted to
// exactly the baseline's benchmark names and gates on its JSON output;
// `--fresh` gates a pre-made document (CI artifact, cross-machine diff).
//
// The gated metric is the document's `gate_metric` (cpu_ns_per_iter: wall
// time picks up other-process noise on a shared box, cpu time does not).
// `--tolerance=T` allows fresh <= baseline * (1 + T); the default T = 1.5
// is deliberately generous — the gate exists to catch step-change
// regressions (a vector loop falling back to scalar, an allocation slipped
// into a hot path, an accidental O(n^2)), not 10% jitter on a noisy CI box.
// A benchmark present in the baseline but missing from the fresh run fails
// the gate: silently shrinking coverage must be loud.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fairmove/obs/json_parse.h"

namespace fairmove {
namespace {

constexpr char kSchema[] = "fairmove.bench.v1";
constexpr double kDefaultTolerance = 1.5;

struct BenchEntry {
  std::string name;
  double cpu_ns_per_iter = 0.0;
};

struct Options {
  std::string baseline_path;
  std::string fresh_path;      // compare mode
  std::string bench_binary;    // run mode
  std::string filter;          // optional override for run mode
  std::string fresh_out;       // where run mode writes the fresh JSON
  double tolerance = kDefaultTolerance;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baseline=BENCH_perf.json"
      " (--bench=BINARY | --fresh=RUN.json)"
      " [--tolerance=%.1f] [--filter=REGEX] [--fresh-out=PATH]\n",
      argv0, kDefaultTolerance);
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

StatusOr<std::vector<BenchEntry>> LoadDocument(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  StatusOr<JsonValue> doc_or = ParseJson(buf.str());
  if (!doc_or.ok()) {
    return Status::InvalidArgument(path + ": " + doc_or.status().message());
  }
  const JsonValue& doc = doc_or.value();
  if (doc.StringOr("schema", "") != kSchema) {
    return Status::InvalidArgument(path + ": not a " + kSchema +
                                   " document");
  }
  const JsonValue* benchmarks = doc.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Status::InvalidArgument(path + ": missing benchmarks array");
  }
  std::vector<BenchEntry> entries;
  for (const JsonValue& item : benchmarks->items) {
    BenchEntry entry;
    entry.name = item.StringOr("name", "");
    entry.cpu_ns_per_iter = item.NumberOr("cpu_ns_per_iter", -1.0);
    if (entry.name.empty() || entry.cpu_ns_per_iter < 0.0) {
      return Status::InvalidArgument(
          path + ": benchmark entry without name/cpu_ns_per_iter");
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    return Status::InvalidArgument(path + ": no benchmark entries");
  }
  return entries;
}

const BenchEntry* FindEntry(const std::vector<BenchEntry>& entries,
                            const std::string& name) {
  for (const BenchEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

/// `^(name1|name2|...)$` over the baseline names, so the fresh run measures
/// exactly the gated set and nothing slower. Benchmark names here contain
/// no regex metacharacters beyond '/' (which is literal in RE2/std regex);
/// anything exotic can use --filter explicitly.
std::string FilterFromBaseline(const std::vector<BenchEntry>& baseline) {
  std::string filter = "^(";
  for (size_t i = 0; i < baseline.size(); ++i) {
    if (i > 0) filter += '|';
    filter += baseline[i].name;
  }
  filter += ")$";
  return filter;
}

int RunGate(const Options& opt) {
  StatusOr<std::vector<BenchEntry>> baseline_or =
      LoadDocument(opt.baseline_path);
  if (!baseline_or.ok()) {
    std::fprintf(stderr, "bench_gate: baseline: %s\n",
                 baseline_or.status().message().c_str());
    return 2;
  }
  const std::vector<BenchEntry>& baseline = baseline_or.value();

  std::string fresh_path = opt.fresh_path;
  if (fresh_path.empty()) {
    fresh_path = opt.fresh_out.empty()
                     ? "/tmp/bench_gate_fresh_" + std::to_string(getpid()) +
                           ".json"
                     : opt.fresh_out;
    const std::string filter =
        opt.filter.empty() ? FilterFromBaseline(baseline) : opt.filter;
    const std::string cmd = "\"" + opt.bench_binary +
                            "\" \"--benchmark_filter=" + filter +
                            "\" \"--json=" + fresh_path + "\"";
    std::fprintf(stderr, "bench_gate: running %s\n", cmd.c_str());
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_gate: bench run failed (exit %d)\n", rc);
      return 2;
    }
  }
  StatusOr<std::vector<BenchEntry>> fresh_or = LoadDocument(fresh_path);
  if (!fresh_or.ok()) {
    std::fprintf(stderr, "bench_gate: fresh: %s\n",
                 fresh_or.status().message().c_str());
    return 2;
  }
  const std::vector<BenchEntry>& fresh = fresh_or.value();

  // The diff table, baseline order. ratio > 1 is a slowdown.
  std::vector<std::string> regressed;
  std::printf("%-32s %14s %14s %8s  %s\n", "benchmark", "baseline(ns)",
              "fresh(ns)", "ratio", "verdict");
  for (const BenchEntry& base : baseline) {
    const BenchEntry* now = FindEntry(fresh, base.name);
    if (now == nullptr) {
      std::printf("%-32s %14.1f %14s %8s  MISSING\n", base.name.c_str(),
                  base.cpu_ns_per_iter, "-", "-");
      regressed.push_back(base.name + " (missing from fresh run)");
      continue;
    }
    const bool gateable = base.cpu_ns_per_iter > 0.0;
    const double ratio =
        gateable ? now->cpu_ns_per_iter / base.cpu_ns_per_iter : 1.0;
    const bool ok = !gateable || ratio <= 1.0 + opt.tolerance;
    std::printf("%-32s %14.1f %14.1f %7.2fx  %s\n", base.name.c_str(),
                base.cpu_ns_per_iter, now->cpu_ns_per_iter, ratio,
                ok ? "ok" : "REGRESSED");
    if (!ok) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "%s (%.1f -> %.1f cpu ns/iter, %.2fx > %.2fx allowed)",
                    base.name.c_str(), base.cpu_ns_per_iter,
                    now->cpu_ns_per_iter, ratio, 1.0 + opt.tolerance);
      regressed.push_back(detail);
    }
  }
  if (!regressed.empty()) {
    std::printf("\nPERF GATE FAILED (%zu of %zu gated benchmarks):\n",
                regressed.size(), baseline.size());
    for (const std::string& r : regressed) std::printf("  - %s\n", r.c_str());
    std::printf("If this slowdown is intended, refresh the baseline (see"
                " README \"Performance tracking\").\n");
    return 1;
  }
  std::printf("\nPERF GATE OK: %zu benchmarks within %.2fx of baseline.\n",
              baseline.size(), 1.0 + opt.tolerance);
  return 0;
}

}  // namespace
}  // namespace fairmove

int main(int argc, char** argv) {
  fairmove::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (fairmove::ParseFlag(arg, "baseline", &opt.baseline_path) ||
        fairmove::ParseFlag(arg, "fresh", &opt.fresh_path) ||
        fairmove::ParseFlag(arg, "bench", &opt.bench_binary) ||
        fairmove::ParseFlag(arg, "filter", &opt.filter) ||
        fairmove::ParseFlag(arg, "fresh-out", &opt.fresh_out)) {
      continue;
    }
    if (fairmove::ParseFlag(arg, "tolerance", &value)) {
      char* end = nullptr;
      opt.tolerance = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || opt.tolerance < 0.0) {
        std::fprintf(stderr, "bench_gate: bad --tolerance value '%s'\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "bench_gate: unknown argument '%s'\n", arg.c_str());
    return fairmove::Usage(argv[0]);
  }
  if (opt.baseline_path.empty() ||
      (opt.fresh_path.empty() == opt.bench_binary.empty())) {
    return fairmove::Usage(argv[0]);
  }
  return fairmove::RunGate(opt);
}
