// Inspects FMCKPT1 checkpoint artefacts: for a single frame file, dumps the
// header metadata and fully verifies both CRCs; for a checkpoint directory,
// resolves the LATEST pointer and verifies every retained frame. Exits
// non-zero when anything is invalid — the CI smoke step behind durable
// checkpointing, and the first debugging stop for a resume that fell back.
//
// Usage: ckpt_inspect <frame.fmck | checkpoint-dir>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fairmove/io/atomic_file.h"
#include "fairmove/resilience/checkpoint.h"

namespace fairmove {
namespace {

/// Fully verifies one frame; prints one line either way.
bool InspectFrame(const std::string& path) {
  const StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    std::printf(" BAD  %s: %s\n", path.c_str(),
                bytes.status().ToString().c_str());
    return false;
  }
  CheckpointMeta meta;
  const StatusOr<std::string> payload = UnframeCheckpoint(*bytes, &meta);
  if (!payload.ok()) {
    std::printf(" BAD  %s: %s\n", path.c_str(),
                payload.status().ToString().c_str());
    return false;
  }
  std::printf(
      "  ok  %s  episode=%lld policy=%s config_crc=%08x payload=%llu B "
      "payload_crc=%08x\n",
      path.c_str(), static_cast<long long>(meta.episode),
      meta.policy_name.c_str(), meta.config_crc,
      static_cast<unsigned long long>(meta.payload_size), meta.payload_crc);
  return true;
}

int InspectDir(const std::string& dir) {
  bool all_ok = true;

  const std::string latest_path = dir + "/LATEST";
  const StatusOr<std::string> latest = ReadFileToString(latest_path);
  if (latest.ok()) {
    std::string name = *latest;
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
      name.pop_back();
    }
    std::printf("LATEST -> %s\n", name.c_str());
    std::error_code ec;
    if (!std::filesystem::exists(dir + "/" + name, ec) || ec) {
      std::printf(" BAD  LATEST names a missing frame\n");
      all_ok = false;
    }
  } else {
    std::printf("LATEST -> (none: %s)\n",
                latest.status().ToString().c_str());
  }

  const CheckpointStore store(dir);
  const std::vector<CheckpointStore::Candidate> candidates =
      store.ListCandidates();
  if (candidates.empty()) {
    std::printf(" BAD  no checkpoint frames in '%s'\n", dir.c_str());
    return 1;
  }
  for (const CheckpointStore::Candidate& c : candidates) {
    if (!InspectFrame(c.file)) all_ok = false;
  }
  return all_ok ? 0 : 1;
}

int Run(const std::string& target) {
  std::error_code ec;
  if (std::filesystem::is_directory(target, ec) && !ec) {
    return InspectDir(target);
  }
  return InspectFrame(target) ? 0 : 1;
}

}  // namespace
}  // namespace fairmove

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <frame.fmck | checkpoint-dir>\n",
                 argv[0]);
    return 2;
  }
  return fairmove::Run(argv[1]);
}
