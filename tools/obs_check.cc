// Validates a FAIRMOVE_TELEMETRY output directory: the run manifest must be
// one well-formed JSON object carrying every schema field, each JSONL stream
// must parse line-by-line with its row-identifying keys present, and the
// registry snapshot (plus the span tree, when profiling was on) must be
// valid JSON. Prints a per-file summary and exits non-zero on the first
// malformed artefact — the CI smoke step behind telemetry runs.
//
// Usage: obs_check <telemetry-dir>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fairmove/common/macros.h"
#include "fairmove/common/status.h"
#include "fairmove/obs/jsonl.h"

namespace fairmove {
namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Manifest (or any standalone JSON-object artefact): parse + check keys.
Status CheckJsonObjectFile(const std::string& path,
                           const std::vector<std::string>& required_keys) {
  FM_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  FM_ASSIGN_OR_RETURN(const std::vector<std::string> keys,
                      JsonObjectKeys(text));
  for (const std::string& required : required_keys) {
    bool found = false;
    for (const std::string& key : keys) {
      if (key == required) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(path + ": missing key '" + required +
                                     "'");
    }
  }
  std::printf("  ok  %-16s %zu top-level keys\n",
              std::filesystem::path(path).filename().c_str(), keys.size());
  return Status::OK();
}

Status CheckStream(const std::string& path,
                   const std::vector<std::string>& required_keys) {
  FM_ASSIGN_OR_RETURN(const int64_t rows,
                      ValidateJsonlFile(path, required_keys));
  std::printf("  ok  %-16s %lld row(s)\n",
              std::filesystem::path(path).filename().c_str(),
              static_cast<long long>(rows));
  return Status::OK();
}

Status CheckTelemetryDir(const std::string& dir) {
  FM_RETURN_IF_ERROR(CheckJsonObjectFile(
      dir + "/manifest.json",
      {"schema", "run_name", "started_utc", "finished_utc", "seed", "scale",
       "episodes", "days", "threads", "build_type", "compiler",
       "profiling"}));
  FM_RETURN_IF_ERROR(CheckJsonObjectFile(dir + "/metrics.json",
                                         {"counters", "gauges",
                                          "histograms"}));
  FM_RETURN_IF_ERROR(
      CheckStream(dir + "/training.jsonl", {"kind", "phase", "method"}));
  FM_RETURN_IF_ERROR(CheckStream(dir + "/sim.jsonl", {"kind", "run",
                                                      "slot"}));
  FM_RETURN_IF_ERROR(CheckStream(dir + "/pool.jsonl", {"kind", "threads"}));
  // Only written when FAIRMOVE_PROFILE=1 accompanied the run.
  const std::string profile = dir + "/profile.json";
  if (std::filesystem::exists(profile)) {
    FM_RETURN_IF_ERROR(CheckJsonObjectFile(profile, {"spans"}));
  }
  return Status::OK();
}

}  // namespace
}  // namespace fairmove

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <telemetry-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  std::printf("checking telemetry dir %s\n", dir.c_str());
  if (fairmove::Status s = fairmove::CheckTelemetryDir(dir); !s.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("all telemetry artefacts valid\n");
  return 0;
}
