// Validates a FAIRMOVE_TELEMETRY output directory: the run manifest must be
// one well-formed JSON object carrying every schema field, each JSONL stream
// must parse line-by-line with its row-identifying keys present, and the
// registry snapshot (plus the span tree, when profiling was on) must be
// valid JSON. Prints a per-file summary and exits non-zero on the first
// malformed artefact — the CI smoke step behind telemetry runs.
//
// Also validates the live-observability artefacts:
//   obs_check --export <dir>    FAIRMOVE_METRICS_EXPORT output: export.json
//                               schema + freshness fields, windows.jsonl
//                               per-recorder monotonic epoch ids, and the
//                               flight.fmfr snapshot's header + CRC
//   obs_check --flight <file>   one FMFR1 flight dump (header, CRC, bounds)
//   obs_check --trace <file>    Chrome trace-event JSON: B/E must balance
//                               per (pid, tid) — unbalanced traces fail
// A plain <telemetry-dir> run picks up any of those artefacts it finds in
// the directory too.
//
// Usage: obs_check [--export|--flight|--trace] <path>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fairmove/common/macros.h"
#include "fairmove/common/status.h"
#include "fairmove/obs/flight_recorder.h"
#include "fairmove/obs/json_parse.h"
#include "fairmove/obs/jsonl.h"
#include "fairmove/obs/trace.h"

namespace fairmove {
namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Manifest (or any standalone JSON-object artefact): parse + check keys.
Status CheckJsonObjectFile(const std::string& path,
                           const std::vector<std::string>& required_keys) {
  FM_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  FM_ASSIGN_OR_RETURN(const std::vector<std::string> keys,
                      JsonObjectKeys(text));
  for (const std::string& required : required_keys) {
    bool found = false;
    for (const std::string& key : keys) {
      if (key == required) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(path + ": missing key '" + required +
                                     "'");
    }
  }
  std::printf("  ok  %-16s %zu top-level keys\n",
              std::filesystem::path(path).filename().c_str(), keys.size());
  return Status::OK();
}

Status CheckStream(const std::string& path,
                   const std::vector<std::string>& required_keys) {
  FM_ASSIGN_OR_RETURN(const int64_t rows,
                      ValidateJsonlFile(path, required_keys));
  std::printf("  ok  %-16s %lld row(s)\n",
              std::filesystem::path(path).filename().c_str(),
              static_cast<long long>(rows));
  return Status::OK();
}

/// Sharded-stepping telemetry contract: each simulated slot emits one
/// kind="shard" row per shard (ids ascending from 0) followed by the
/// kind="slot" fleet row, and the shard rows' phase counts must sum to the
/// fleet row's exactly — the deterministic merge the simulator promises at
/// any FAIRMOVE_THREADS.
Status CheckShardComposition(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  const char* kPhases[] = {"cruising",  "serving",  "to_station",
                           "queuing",   "charging", "broken_down"};
  int64_t next_shard = 0;
  int64_t shard_sums[6] = {0, 0, 0, 0, 0, 0};
  int64_t slots_checked = 0;
  int64_t shard_rows = 0;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    FM_ASSIGN_OR_RETURN(const JsonValue row, ParseJson(line));
    const std::string kind = row.StringOr("kind", "");
    if (kind == "shard") {
      const int64_t shard =
          static_cast<int64_t>(row.NumberOr("shard", -1.0));
      if (shard != next_shard) {
        return Status::InvalidArgument(
            path + ": line " + std::to_string(line_no) + ": shard id " +
            std::to_string(shard) + ", expected " +
            std::to_string(next_shard) + " (ids must ascend from 0)");
      }
      ++next_shard;
      ++shard_rows;
      for (int p = 0; p < 6; ++p) {
        shard_sums[p] += static_cast<int64_t>(row.NumberOr(kPhases[p], 0.0));
      }
    } else if (kind == "slot") {
      // A slot row without preceding shard rows is fine (shard telemetry
      // may be off); with them, the merge must be exact.
      if (next_shard > 0) {
        for (int p = 0; p < 6; ++p) {
          const int64_t fleet =
              static_cast<int64_t>(row.NumberOr(kPhases[p], 0.0));
          if (fleet != shard_sums[p]) {
            return Status::InvalidArgument(
                path + ": line " + std::to_string(line_no) + ": slot " +
                std::to_string(static_cast<int64_t>(
                    row.NumberOr("slot", -1.0))) +
                " field '" + kPhases[p] + "': shard rows sum to " +
                std::to_string(shard_sums[p]) + " but the fleet row says " +
                std::to_string(fleet));
          }
        }
        ++slots_checked;
      }
      next_shard = 0;
      for (int64_t& s : shard_sums) s = 0;
    }
  }
  if (next_shard != 0) {
    return Status::InvalidArgument(
        path + ": " + std::to_string(next_shard) +
        " trailing shard row(s) with no closing slot row");
  }
  std::printf("  ok  %-16s %lld slot(s) composed from %lld shard row(s)\n",
              std::filesystem::path(path).filename().c_str(),
              static_cast<long long>(slots_checked),
              static_cast<long long>(shard_rows));
  return Status::OK();
}

/// Racing telemetry contract (core/racing.h EmitRacingTelemetry): each race
/// emits one kind="racing_cell" row per arm, arm ids ascending from 0 per
/// race label, carrying the full per-cell payload. A cell either survived
/// (elimination fields -1) or records the round and the race-timeline slot
/// it was eliminated at; the race-level budget fields must be consistent on
/// every row.
Status CheckRacingCells(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  // race label -> next expected arm id (telemetry holds few races; linear
  // scan beats dragging in a map for the tool).
  std::vector<std::pair<std::string, int64_t>> next_arm;
  int64_t rows = 0;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    FM_ASSIGN_OR_RETURN(const JsonValue row, ParseJson(line));
    if (row.StringOr("kind", "") != "racing_cell") continue;
    ++rows;
    const std::string where = path + ": line " + std::to_string(line_no);
    for (const char* key :
         {"race", "method", "arm", "replicas", "survived",
          "eliminated_in_round", "elimination_slot", "mean_reward",
          "half_width", "bound", "delta", "replicas_spent", "fixed_budget"}) {
      if (row.Find(key) == nullptr) {
        return Status::InvalidArgument(where + ": racing_cell row missing '" +
                                       std::string(key) + "'");
      }
    }
    const std::string race = row.StringOr("race", "");
    const int64_t arm = static_cast<int64_t>(row.NumberOr("arm", -1.0));
    int64_t expected = 0;
    std::pair<std::string, int64_t>* entry = nullptr;
    for (auto& e : next_arm) {
      if (e.first == race) entry = &e;
    }
    if (entry == nullptr) {
      next_arm.emplace_back(race, 0);
      entry = &next_arm.back();
    }
    expected = entry->second;
    if (arm != expected) {
      return Status::InvalidArgument(
          where + ": race '" + race + "' arm id " + std::to_string(arm) +
          ", expected " + std::to_string(expected) +
          " (arm ids must ascend from 0 per race)");
    }
    entry->second = arm + 1;
    const JsonValue* survived = row.Find("survived");
    if (survived == nullptr || !survived->is_bool()) {
      return Status::InvalidArgument(where + ": 'survived' must be a bool");
    }
    const int64_t round =
        static_cast<int64_t>(row.NumberOr("eliminated_in_round", -2.0));
    const int64_t slot =
        static_cast<int64_t>(row.NumberOr("elimination_slot", -2.0));
    if (survived->bool_value) {
      if (round != -1 || slot != -1) {
        return Status::InvalidArgument(
            where + ": surviving cell carries elimination round " +
            std::to_string(round) + " / slot " + std::to_string(slot));
      }
    } else if (round < 0 || slot < 1) {
      return Status::InvalidArgument(
          where + ": eliminated cell has round " + std::to_string(round) +
          " / slot " + std::to_string(slot) +
          " (round must be >= 0, slot >= 1)");
    }
    const int64_t replicas =
        static_cast<int64_t>(row.NumberOr("replicas", -1.0));
    const int64_t spent =
        static_cast<int64_t>(row.NumberOr("replicas_spent", -1.0));
    const int64_t budget =
        static_cast<int64_t>(row.NumberOr("fixed_budget", -1.0));
    if (replicas < 0 || spent < replicas || budget < spent) {
      return Status::InvalidArgument(
          where + ": inconsistent budget: replicas " +
          std::to_string(replicas) + " <= replicas_spent " +
          std::to_string(spent) + " <= fixed_budget " +
          std::to_string(budget) + " violated");
    }
    const std::string bound = row.StringOr("bound", "");
    if (bound != "gaussian" && bound != "hoeffding" && bound != "bernstein") {
      return Status::InvalidArgument(where + ": unknown CI bound '" + bound +
                                     "'");
    }
    const double delta = row.NumberOr("delta", -1.0);
    if (delta <= 0.0 || delta >= 1.0) {
      return Status::InvalidArgument(where + ": delta " +
                                     std::to_string(delta) +
                                     " outside (0, 1)");
    }
  }
  std::printf("  ok  %-16s %lld racing_cell row(s) across %zu race(s)\n",
              std::filesystem::path(path).filename().c_str(),
              static_cast<long long>(rows), next_arm.size());
  return Status::OK();
}

/// FMFR1 flight dump: ReadFlightDumpFile already rejects bad magic, version,
/// truncated sections, and CRC mismatches; here we just surface the summary.
Status CheckFlightDump(const std::string& path) {
  FM_ASSIGN_OR_RETURN(const FlightDump dump, ReadFlightDumpFile(path));
  size_t events = 0;
  for (const FlightDumpRing& ring : dump.rings) {
    events += ring.events.size();
    if (ring.recorded_total < ring.events.size()) {
      return Status::InvalidArgument(
          path + ": ring tid " + std::to_string(ring.tid) + " stores " +
          std::to_string(ring.events.size()) + " event(s) but claims only " +
          std::to_string(ring.recorded_total) + " ever recorded");
    }
  }
  std::printf("  ok  %-16s %zu ring(s), %zu event(s), %zu name(s), CRC ok\n",
              std::filesystem::path(path).filename().c_str(),
              dump.rings.size(), events, dump.names.size());
  return Status::OK();
}

/// Chrome trace-event JSON (trace_export output): per-lane B/E balance.
Status CheckTrace(const std::string& path) {
  FM_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  FM_RETURN_IF_ERROR(ValidateChromeTrace(text));
  std::printf("  ok  %-16s balanced trace-event JSON\n",
              std::filesystem::path(path).filename().c_str());
  return Status::OK();
}

/// export.json contract: the schema tag, and freshness fields a poller uses
/// to distinguish a live exporter from a stale file.
Status CheckExportJson(const std::string& path) {
  FM_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  FM_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(text));
  const std::string schema = root.StringOr("schema", "");
  if (schema != "fairmove.export.v1") {
    return Status::InvalidArgument(path + ": schema '" + schema +
                                   "', expected 'fairmove.export.v1'");
  }
  for (const char* key :
       {"freshness_utc", "freshness_seq", "period_ms", "latency", "metrics"}) {
    if (root.Find(key) == nullptr) {
      return Status::InvalidArgument(path + ": missing key '" +
                                     std::string(key) + "'");
    }
  }
  const int64_t seq = static_cast<int64_t>(root.NumberOr("freshness_seq", 0));
  if (seq < 1) {
    return Status::InvalidArgument(path + ": freshness_seq " +
                                   std::to_string(seq) + " must be >= 1");
  }
  if (root.StringOr("freshness_utc", "").size() < 20) {
    return Status::InvalidArgument(path +
                                   ": freshness_utc is not a UTC timestamp");
  }
  std::printf("  ok  %-16s seq %lld\n",
              std::filesystem::path(path).filename().c_str(),
              static_cast<long long>(seq));
  return Status::OK();
}

/// windows.jsonl contract: every row carries the quantile payload, and the
/// epoch ids are strictly increasing per recorder name — the property that
/// makes the sliding windows stitchable into a time series.
Status CheckWindowRows(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::vector<std::pair<std::string, int64_t>> last_epoch;
  int64_t rows = 0;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    FM_ASSIGN_OR_RETURN(const JsonValue row, ParseJson(line));
    const std::string where = path + ": line " + std::to_string(line_no);
    for (const char* key : {"epoch_id", "name", "count", "rate_per_s",
                            "p50_ns", "p90_ns", "p99_ns", "p999_ns",
                            "window_count", "window_max_ns", "cum_count"}) {
      if (row.Find(key) == nullptr) {
        return Status::InvalidArgument(where + ": missing key '" +
                                       std::string(key) + "'");
      }
    }
    const std::string name = row.StringOr("name", "");
    const int64_t epoch = static_cast<int64_t>(row.NumberOr("epoch_id", -1));
    if (epoch < 0) {
      return Status::InvalidArgument(where + ": epoch_id must be >= 0");
    }
    std::pair<std::string, int64_t>* entry = nullptr;
    for (auto& e : last_epoch) {
      if (e.first == name) entry = &e;
    }
    if (entry == nullptr) {
      last_epoch.emplace_back(name, epoch);
    } else if (epoch <= entry->second) {
      return Status::InvalidArgument(
          where + ": recorder '" + name + "' epoch_id " +
          std::to_string(epoch) + " does not increase past " +
          std::to_string(entry->second));
    } else {
      entry->second = epoch;
    }
    ++rows;
  }
  std::printf("  ok  %-16s %lld row(s) across %zu recorder(s)\n",
              std::filesystem::path(path).filename().c_str(),
              static_cast<long long>(rows), last_epoch.size());
  return Status::OK();
}

/// A FAIRMOVE_METRICS_EXPORT directory: snapshot + windows + flight dump.
Status CheckExportDir(const std::string& dir) {
  FM_RETURN_IF_ERROR(CheckExportJson(dir + "/export.json"));
  FM_RETURN_IF_ERROR(CheckWindowRows(dir + "/windows.jsonl"));
  const std::string prom = dir + "/metrics.prom";
  FM_ASSIGN_OR_RETURN(const std::string prom_text, ReadFile(prom));
  if (prom_text.empty() || prom_text[0] != '#') {
    return Status::InvalidArgument(prom + ": missing exposition header");
  }
  std::printf("  ok  %-16s %zu byte(s)\n",
              std::filesystem::path(prom).filename().c_str(),
              prom_text.size());
  const std::string flight = dir + "/flight.fmfr";
  if (std::filesystem::exists(flight)) {
    FM_RETURN_IF_ERROR(CheckFlightDump(flight));
  }
  return Status::OK();
}

Status CheckTelemetryDir(const std::string& dir) {
  FM_RETURN_IF_ERROR(CheckJsonObjectFile(
      dir + "/manifest.json",
      {"schema", "run_name", "started_utc", "finished_utc", "seed", "scale",
       "episodes", "days", "threads", "build_type", "compiler",
       "profiling"}));
  FM_RETURN_IF_ERROR(CheckJsonObjectFile(dir + "/metrics.json",
                                         {"counters", "gauges",
                                          "histograms"}));
  FM_RETURN_IF_ERROR(
      CheckStream(dir + "/training.jsonl", {"kind", "phase", "method"}));
  FM_RETURN_IF_ERROR(CheckRacingCells(dir + "/training.jsonl"));
  FM_RETURN_IF_ERROR(CheckStream(dir + "/sim.jsonl", {"kind", "run",
                                                      "slot"}));
  FM_RETURN_IF_ERROR(CheckShardComposition(dir + "/sim.jsonl"));
  FM_RETURN_IF_ERROR(CheckStream(dir + "/pool.jsonl", {"kind", "threads"}));
  // Only written when FAIRMOVE_PROFILE=1 accompanied the run.
  const std::string profile = dir + "/profile.json";
  if (std::filesystem::exists(profile)) {
    FM_RETURN_IF_ERROR(CheckJsonObjectFile(profile, {"spans"}));
  }
  // Live-observability artefacts, when the run produced them in this dir.
  if (std::filesystem::exists(dir + "/export.json")) {
    FM_RETURN_IF_ERROR(CheckExportDir(dir));
  }
  for (const char* name : {"/flight_crash.fmfr", "/flight_stall.fmfr"}) {
    const std::string path = dir + name;
    if (std::filesystem::exists(path)) {
      FM_RETURN_IF_ERROR(CheckFlightDump(path));
    }
  }
  return Status::OK();
}

}  // namespace
}  // namespace fairmove

int main(int argc, char** argv) {
  const char* usage = "usage: %s [--export|--flight|--trace] <path>\n";
  fairmove::Status status;
  if (argc == 3 && std::strcmp(argv[1], "--flight") == 0) {
    std::printf("checking flight dump %s\n", argv[2]);
    status = fairmove::CheckFlightDump(argv[2]);
  } else if (argc == 3 && std::strcmp(argv[1], "--trace") == 0) {
    std::printf("checking trace %s\n", argv[2]);
    status = fairmove::CheckTrace(argv[2]);
  } else if (argc == 3 && std::strcmp(argv[1], "--export") == 0) {
    std::printf("checking export dir %s\n", argv[2]);
    status = fairmove::CheckExportDir(argv[2]);
  } else if (argc == 2 && argv[1][0] != '-') {
    std::printf("checking telemetry dir %s\n", argv[1]);
    status = fairmove::CheckTelemetryDir(argv[1]);
  } else {
    std::fprintf(stderr, usage, argv[0]);
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("all artefacts valid\n");
  return 0;
}
