// Racing evaluation suite (core/racing.h): the successive-elimination
// engine on synthetic rewards, the parallel RunRace driver's ordering and
// error contracts, and the system-level guarantees of RunRacingComparison —
// fixed-mode byte-identity (against hardcoded pre-racing golden bytes),
// thread-count invariance, and the >= 2x replica-budget cut on a separated
// method field. Carries the `racing` (and secondary `parallel`) ctest
// labels; run under TSan via the recipe in .claude/skills/verify/SKILL.md
// before touching core/racing.cc.

#include "fairmove/core/racing.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fairmove/common/parallel.h"
#include "fairmove/core/experiment.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/obs/jsonl.h"
#include "fairmove/obs/telemetry.h"

namespace fairmove {
namespace {

// ------------------------------------------------------------ Race engine --

RacingConfig SmallConfig() {
  RacingConfig config;
  config.min_replicas = 2;
  config.batch = 1;
  config.max_replicas = 10;
  return config;
}

TEST(RacingConfigTest, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(RacingConfig{}.Validate().ok());
  RacingConfig config;
  config.delta = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = RacingConfig{};
  config.delta = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = RacingConfig{};
  config.min_replicas = 1;  // CIs are undefined below 2 samples
  EXPECT_FALSE(config.Validate().ok());
  config = RacingConfig{};
  config.batch = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = RacingConfig{};
  config.max_replicas = config.min_replicas - 1;
  EXPECT_FALSE(config.Validate().ok());
}

// Deterministic synthetic arms: arm a's replica r reward is base[a] plus a
// small fixed wobble, so means are well separated and variances tiny.
double SyntheticReward(double base, int replica) {
  return base + 0.01 * ((replica % 3) - 1);
}

TEST(RaceEngineTest, ClearlyDominatedArmsAreEliminatedInRoundZero) {
  RacingConfig config = SmallConfig();
  config.reuse_freed_budget = false;  // the saving is visible in spent
  Race race({"best", "mid", "worst"}, config);
  int replica = 0;
  // "best" and "mid" sit 0.005 apart — inside the ~0.01 round-0 interval
  // half-width the ±0.01 wobble produces — while "worst" is 5 below.
  const double bases[] = {10.0, 9.995, 5.0};
  // Round 0: everyone runs min_replicas.
  ASSERT_EQ(race.NextRoundSize(), 2);
  for (int r = 0; r < 2; ++r) {
    for (int arm : race.survivors()) {
      race.Observe(arm, SyntheticReward(bases[arm], replica + r));
    }
  }
  replica += 2;
  race.FinishRound();
  // "worst" is separated from both others by ~5 with tiny variance.
  ASSERT_EQ(race.survivors().size(), 2u);
  EXPECT_EQ(race.survivors()[0], 0);
  EXPECT_EQ(race.survivors()[1], 1);

  // Drive to completion; "best" and "mid" stay overlapped but the per-arm
  // cap is hard, so the race terminates with budget left unspent.
  while (int n = race.NextRoundSize()) {
    for (int r = 0; r < n; ++r) {
      for (int arm : race.survivors()) {
        race.Observe(arm, SyntheticReward(bases[arm], replica + r));
      }
    }
    replica += n;
    race.FinishRound();
  }
  RacingOutcome outcome = race.Finish();
  EXPECT_EQ(outcome.cells[2].eliminated_in_round, 0);
  EXPECT_EQ(outcome.cells[2].replicas, 2);
  EXPECT_EQ(outcome.cells[2].elimination_slot, 6);  // 3 arms x 2 replicas
  EXPECT_LE(outcome.replicas_spent, outcome.fixed_budget);
  EXPECT_EQ(outcome.best_arm, 0);
  EXPECT_EQ(outcome.order[0], 0);
  EXPECT_EQ(outcome.order[2], 2);
  // The saving from eliminating one of three arms after 2 of 10 replicas.
  EXPECT_GT(outcome.SavingsFactor(), 1.0);
}

TEST(RaceEngineTest, OneSurvivorEndsTheRaceEarly) {
  // One arm clearly best, three clearly worse: round 0 eliminates the
  // three, and the race stops instead of burning the survivor's budget.
  Race race({"a", "b", "c", "d"}, SmallConfig());
  const double bases[] = {10.0, 1.0, 2.0, 3.0};
  ASSERT_EQ(race.NextRoundSize(), 2);
  for (int r = 0; r < 2; ++r) {
    for (int arm : race.survivors()) {
      race.Observe(arm, SyntheticReward(bases[arm], r));
    }
  }
  race.FinishRound();
  ASSERT_EQ(race.survivors().size(), 1u);
  EXPECT_EQ(race.NextRoundSize(), 0);
  RacingOutcome outcome = race.Finish();
  EXPECT_EQ(outcome.replicas_spent, 8);
  EXPECT_EQ(outcome.fixed_budget, 40);
  EXPECT_GE(outcome.SavingsFactor(), 2.0);  // 5x here
  EXPECT_EQ(outcome.best_arm, 0);
}

TEST(RaceEngineTest, EliminationDisabledSpendsExactlyTheFixedBudget) {
  RacingConfig config = SmallConfig();
  config.min_replicas = config.max_replicas = 4;
  Race race({"x", "y"}, config);
  ASSERT_EQ(race.NextRoundSize(), 4);
  for (int r = 0; r < 4; ++r) {
    for (int arm : race.survivors()) {
      race.Observe(arm, SyntheticReward(arm == 0 ? 2.0 : 1.0, r));
    }
  }
  race.FinishRound();
  EXPECT_EQ(race.NextRoundSize(), 0);  // budget exhausted in one round
  RacingOutcome outcome = race.Finish();
  EXPECT_EQ(outcome.replicas_spent, outcome.fixed_budget);
  EXPECT_EQ(outcome.cells[0].replicas, 4);
  EXPECT_EQ(outcome.cells[1].replicas, 4);
}

TEST(RaceEngineTest, FreedBudgetIsReinvestedOnlyWhenEnabled) {
  // Arms: two overlapping survivors + two early eliminations. With reuse
  // the survivors run past max_replicas on the freed budget; without it
  // they stop exactly at the cap.
  const double bases[] = {10.0, 10.005, 1.0, 1.5};
  for (bool reuse : {true, false}) {
    RacingConfig config = SmallConfig();
    config.max_replicas = 6;
    config.reuse_freed_budget = reuse;
    Race race({"a", "b", "c", "d"}, config);
    int replica = 0;
    while (int n = race.NextRoundSize()) {
      for (int r = 0; r < n; ++r) {
        for (int arm : race.survivors()) {
          // Identical wobble keeps a/b statistically inseparable.
          race.Observe(arm, SyntheticReward(bases[arm], replica + r));
        }
      }
      replica += n;
      race.FinishRound();
    }
    RacingOutcome outcome = race.Finish();
    EXPECT_EQ(outcome.cells[2].eliminated_in_round, 0) << "reuse=" << reuse;
    EXPECT_EQ(outcome.cells[3].eliminated_in_round, 0) << "reuse=" << reuse;
    if (reuse) {
      EXPECT_GT(outcome.cells[0].replicas, config.max_replicas);
      EXPECT_EQ(outcome.replicas_spent, outcome.fixed_budget);
    } else {
      EXPECT_EQ(outcome.cells[0].replicas, config.max_replicas);
      EXPECT_EQ(outcome.cells[1].replicas, config.max_replicas);
      EXPECT_LT(outcome.replicas_spent, outcome.fixed_budget);
    }
  }
}

TEST(RaceEngineTest, IdenticalArmsNeverEliminateEachOther) {
  // All-identical samples give zero-width intervals at identical means:
  // elimination requires a *strictly* higher lower bound, so ties survive.
  RacingConfig config = SmallConfig();
  config.max_replicas = 4;
  Race race({"t1", "t2", "t3"}, config);
  while (int n = race.NextRoundSize()) {
    for (int r = 0; r < n; ++r) {
      for (int arm : race.survivors()) race.Observe(arm, 7.5);
    }
    race.FinishRound();
  }
  RacingOutcome outcome = race.Finish();
  for (const RacingCell& cell : outcome.cells) {
    EXPECT_TRUE(cell.survived()) << cell.name;
    EXPECT_EQ(cell.half_width, 0.0);
  }
  EXPECT_EQ(outcome.best_arm, 0);  // exact tie resolves to lowest index
}

// --------------------------------------------------------------- RunRace --

TEST(RunRaceTest, PreparesEachReplicaOnceAndRacesLockstep) {
  RacingConfig config = SmallConfig();
  config.max_replicas = 5;
  std::atomic<int> prepares{0};
  std::vector<std::atomic<int>> cell_runs(3 * 15);  // arm * budget grid
  for (auto& c : cell_runs) c.store(0);
  RacingGridHooks hooks;
  hooks.prepare = [&](int) {
    prepares.fetch_add(1);
    return Status::OK();
  };
  hooks.run_cell = [&](int arm, int replica) -> StatusOr<double> {
    cell_runs[static_cast<size_t>(arm * 15 + replica)].fetch_add(1);
    return SyntheticReward(arm == 1 ? 10.0 : 2.0 + arm, replica);
  };
  auto outcome_or = RunRace({"a", "b", "c"}, config, hooks);
  ASSERT_TRUE(outcome_or.ok()) << outcome_or.status();
  const RacingOutcome& outcome = *outcome_or;
  // Lockstep: every replica index any arm raced was prepared exactly once,
  // and no cell ran twice.
  int max_replicas_run = 0;
  for (const RacingCell& cell : outcome.cells) {
    max_replicas_run = std::max(max_replicas_run, cell.replicas);
  }
  EXPECT_EQ(prepares.load(), max_replicas_run);
  for (size_t arm = 0; arm < 3; ++arm) {
    for (int r = 0; r < 15; ++r) {
      const int runs = cell_runs[arm * 15 + static_cast<size_t>(r)].load();
      EXPECT_EQ(runs, r < outcome.cells[arm].replicas ? 1 : 0)
          << "arm " << arm << " replica " << r;
    }
  }
  EXPECT_EQ(outcome.best_arm, 1);
}

TEST(RunRaceTest, CellErrorsSurfaceInAscendingArmOrder) {
  RacingGridHooks hooks;
  hooks.run_cell = [](int arm, int replica) -> StatusOr<double> {
    if (arm >= 1 && replica == 0) {
      return Status::Internal("cell failed arm=" + std::to_string(arm));
    }
    return 1.0;
  };
  auto outcome_or = RunRace({"a", "b", "c"}, SmallConfig(), hooks);
  ASSERT_FALSE(outcome_or.ok());
  // Both arm 1 and arm 2 fail at replica 0; the lowest arm wins regardless
  // of scheduling.
  EXPECT_EQ(outcome_or.status().message(), "cell failed arm=1");
}

TEST(RunRaceTest, PrepareErrorsSurfaceInAscendingReplicaOrder) {
  RacingGridHooks hooks;
  hooks.prepare = [](int replica) {
    if (replica >= 1) {
      return Status::Internal("prepare failed r=" + std::to_string(replica));
    }
    return Status::OK();
  };
  hooks.run_cell = [](int, int) -> StatusOr<double> { return 1.0; };
  auto outcome_or = RunRace({"a", "b"}, SmallConfig(), hooks);
  ASSERT_FALSE(outcome_or.ok());
  EXPECT_EQ(outcome_or.status().message(), "prepare failed r=1");
}

// ------------------------------------------------- system-level contracts --

FairMoveConfig TestConfig() {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.03);
  cfg.trainer.episodes = 1;
  cfg.eval.days = 1;
  return cfg;
}

// The comparison-table bytes RunRepeatedComparison produced BEFORE the
// racing layer existed, captured at commit cc6dbe7 with this exact config
// (scale 0.03, 1 episode, 1 eval day, {GT, SD2, FairMove}, 2 repeats).
// Fixed mode must keep producing these bytes — the racing PR must not
// perturb the fixed path.
constexpr char kPreRacingGoldenCsv[] =
    "method,PIPE,PIPF,PRCT,PRIT,mean PE,PF\n"
    "GT,+0.0% \xC2\xB1 0.0,+0.0% \xC2\xB1 0.0,+0.0% \xC2\xB1 0.0,"
    "+0.0% \xC2\xB1 0.0,39.5 \xC2\xB1 0.1,49.7 \xC2\xB1 3.7\n"
    "SD2,-5.3% \xC2\xB1 3.0,-129.4% \xC2\xB1 2.7,-15.4% \xC2\xB1 4.3,"
    "-19.7% \xC2\xB1 33.0,37.4 \xC2\xB1 1.1,113.9 \xC2\xB1 7.1\n"
    "FairMove,-6.0% \xC2\xB1 0.3,-5.1% \xC2\xB1 15.1,+0.8% \xC2\xB1 0.2,"
    "+19.3% \xC2\xB1 20.0,37.1 \xC2\xB1 0.0,51.7 \xC2\xB1 3.6\n";

TEST(RacingComparisonTest, FixedModeReproducesPreRacingGoldenBytes) {
  const std::vector<PolicyKind> kinds = {
      PolicyKind::kGroundTruth, PolicyKind::kSd2, PolicyKind::kFairMove};
  auto fixed_or = RunRepeatedComparison(TestConfig(), kinds, 2);
  ASSERT_TRUE(fixed_or.ok()) << fixed_or.status();
  EXPECT_EQ(fixed_or->ToTable().ToCsv(), kPreRacingGoldenCsv);
}

TEST(RacingComparisonTest, EliminationDisabledMatchesFixedModeBytes) {
  // min_replicas == max_replicas turns the race into the fixed grid: one
  // round, no early stopping. Its aggregate must reproduce
  // RunRepeatedComparison byte for byte — which proves every racing cell
  // is bit-identical to its fixed-mode counterpart (same RepeatConfig
  // seeds, same replica evaluation, same fold order).
  const std::vector<PolicyKind> kinds = {
      PolicyKind::kGroundTruth, PolicyKind::kSd2, PolicyKind::kFairMove};
  RacingConfig racing;
  racing.min_replicas = racing.max_replicas = 2;
  auto raced_or = RunRacingComparison(TestConfig(), kinds, racing);
  ASSERT_TRUE(raced_or.ok()) << raced_or.status();
  EXPECT_EQ(raced_or->aggregate.ToTable().ToCsv(), kPreRacingGoldenCsv);
  EXPECT_EQ(raced_or->outcome.replicas_spent,
            raced_or->outcome.fixed_budget);
  for (const RacingCell& cell : raced_or->outcome.cells) {
    EXPECT_EQ(cell.replicas, 2);
  }
}

TEST(RacingComparisonTest, ByteIdenticalAcrossThreadCounts) {
  const std::vector<PolicyKind> kinds = {
      PolicyKind::kGroundTruth, PolicyKind::kSd2, PolicyKind::kFairMove};
  RacingConfig racing;
  racing.max_replicas = 4;

  SetGlobalThreads(1);
  auto serial_or = RunRacingComparison(TestConfig(), kinds, racing);
  ASSERT_TRUE(serial_or.ok()) << serial_or.status();

  SetGlobalThreads(4);
  auto threaded_or = RunRacingComparison(TestConfig(), kinds, racing);
  SetGlobalThreads(1);
  ASSERT_TRUE(threaded_or.ok()) << threaded_or.status();

  // Same surviving-cell set, same elimination history, and byte-identical
  // aggregated metrics at 1 vs 4 threads.
  EXPECT_EQ(serial_or->aggregate.ToTable().ToCsv(),
            threaded_or->aggregate.ToTable().ToCsv());
  EXPECT_EQ(serial_or->outcome.replicas_spent,
            threaded_or->outcome.replicas_spent);
  EXPECT_EQ(serial_or->outcome.rounds, threaded_or->outcome.rounds);
  EXPECT_EQ(serial_or->outcome.best_arm, threaded_or->outcome.best_arm);
  EXPECT_EQ(serial_or->outcome.order, threaded_or->outcome.order);
  ASSERT_EQ(serial_or->outcome.cells.size(),
            threaded_or->outcome.cells.size());
  for (size_t i = 0; i < serial_or->outcome.cells.size(); ++i) {
    const RacingCell& a = serial_or->outcome.cells[i];
    const RacingCell& b = threaded_or->outcome.cells[i];
    EXPECT_EQ(a.replicas, b.replicas) << a.name;
    EXPECT_EQ(a.eliminated_in_round, b.eliminated_in_round) << a.name;
    EXPECT_EQ(a.elimination_slot, b.elimination_slot) << a.name;
    EXPECT_EQ(a.reward.count(), b.reward.count()) << a.name;
    EXPECT_EQ(a.reward.mean(), b.reward.mean()) << a.name;
    EXPECT_EQ(a.reward.sum(), b.reward.sum()) << a.name;
  }
}

TEST(RacingComparisonTest, CutsReplicaBudgetTwofoldAndAgreesWithFixed) {
  // The acceptance bar: on the full six-method field, racing must reach
  // the fixed grid's conclusion for at most half its replica budget.
  const std::vector<PolicyKind> kinds = FairMoveSystem::AllMethods();
  RacingConfig racing;
  racing.max_replicas = 10;  // the paper's repeat protocol
  racing.reuse_freed_budget = false;
  auto raced_or = RunRacingComparison(TestConfig(), kinds, racing);
  ASSERT_TRUE(raced_or.ok()) << raced_or.status();
  const RacingOutcome& outcome = raced_or->outcome;
  EXPECT_GE(outcome.SavingsFactor(), 2.0)
      << outcome.replicas_spent << " of " << outcome.fixed_budget;

  auto fixed_or = RunRepeatedComparison(TestConfig(), kinds, 10);
  ASSERT_TRUE(fixed_or.ok()) << fixed_or.status();
  // Fixed-mode ranking by mean raced objective (Eq-5 eval reward).
  std::vector<size_t> fixed_order(kinds.size());
  for (size_t i = 0; i < kinds.size(); ++i) fixed_order[i] = i;
  std::stable_sort(fixed_order.begin(), fixed_order.end(),
                   [&](size_t a, size_t b) {
                     return fixed_or->methods[a].reward.mean() >
                            fixed_or->methods[b].reward.mean();
                   });
  // Same best arm...
  ASSERT_GE(outcome.best_arm, 0);
  EXPECT_EQ(static_cast<size_t>(outcome.best_arm), fixed_order[0]);
  // ...and the same relative ordering among the racing survivors.
  std::vector<int> survivors_racing_order;
  for (int arm : outcome.order) {
    if (outcome.cells[static_cast<size_t>(arm)].survived()) {
      survivors_racing_order.push_back(arm);
    }
  }
  std::vector<int> survivors_fixed_order;
  for (size_t arm : fixed_order) {
    if (outcome.cells[arm].survived()) {
      survivors_fixed_order.push_back(static_cast<int>(arm));
    }
  }
  EXPECT_EQ(survivors_racing_order, survivors_fixed_order);
  // Every eliminated arm really is worse than the winner under the full
  // fixed budget — elimination never discarded the true best.
  const double best_fixed_mean =
      fixed_or->methods[fixed_order[0]].reward.mean();
  for (size_t arm = 0; arm < kinds.size(); ++arm) {
    if (!outcome.cells[arm].survived()) {
      EXPECT_LT(fixed_or->methods[arm].reward.mean(), best_fixed_mean)
          << outcome.cells[arm].name;
    }
  }
}

// --------------------------------------------------- telemetry and JSON --

RacingOutcome SyntheticOutcome() {
  RacingConfig config;
  Race race({"fast", "slow"}, config);
  for (int r = 0; r < 2; ++r) {
    for (int arm : race.survivors()) {
      race.Observe(arm, SyntheticReward(arm == 0 ? 9.0 : 3.0, r));
    }
  }
  race.FinishRound();
  return race.Finish();
}

TEST(RacingTelemetryTest, EmitsRacingCellRowsIntoTrainingStream) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fairmove_racing_obs")
          .string();
  std::filesystem::remove_all(dir);
  Telemetry& telemetry = Telemetry::Get();
  ASSERT_TRUE(telemetry.EnableForTesting(dir).ok());
  const int64_t before = telemetry.training_stream().rows_written();
  EmitRacingTelemetry("unit", RacingConfig{}, SyntheticOutcome());
  EXPECT_EQ(telemetry.training_stream().rows_written(), before + 2);
  telemetry.DisableForTesting();

  // Rows must be valid JSONL with the training-stream identity keys plus
  // the racing payload tools/obs_check validates.
  auto rows_or = ValidateJsonlFile(
      dir + "/training.jsonl",
      {"kind", "phase", "method", "race", "arm", "replicas", "survived",
       "eliminated_in_round", "mean_reward"});
  ASSERT_TRUE(rows_or.ok()) << rows_or.status();
  EXPECT_EQ(*rows_or, 2);
  std::ifstream in(dir + "/training.jsonl");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"racing_cell\""), std::string::npos);
  EXPECT_NE(line.find("\"fast\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(RacingTelemetryTest, DisabledTelemetryIsANoOp) {
  ASSERT_FALSE(Telemetry::Get().enabled());
  EmitRacingTelemetry("unit", RacingConfig{}, SyntheticOutcome());  // no crash
}

TEST(RacingJsonTest, WritesWellFormedV1Document) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "racing_v1.json").string();
  const RacingOutcome outcome = SyntheticOutcome();
  ASSERT_TRUE(WriteRacingJson(path, "unit", "racing", RacingConfig{},
                              outcome, 1.25)
                  .ok());
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ASSERT_TRUE(ValidateJson(text).ok());
  auto keys_or = JsonObjectKeys(text);
  ASSERT_TRUE(keys_or.ok());
  const std::set<std::string> keys(keys_or->begin(), keys_or->end());
  for (const char* key :
       {"schema", "race", "mode", "bound", "delta", "rounds",
        "replicas_spent", "fixed_budget", "savings_factor", "best_arm",
        "wall_seconds", "cells_per_second", "order", "cells"}) {
    EXPECT_TRUE(keys.count(key)) << key;
  }
  EXPECT_NE(text.find("\"fairmove.racing.v1\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(RacingOutcomeTest, TableRendersEliminationAndSurvival) {
  const RacingOutcome outcome = SyntheticOutcome();
  const Table table = outcome.ToTable(CiBound::kGaussian, 0.05);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.Cell(0, "arm"), "fast");
  EXPECT_EQ(table.Cell(0, "status"), "survived");
  EXPECT_NE(table.Cell(1, "status").find("eliminated in round 0"),
            std::string::npos);
}

// ---------------------------------------------------------- alpha sweep --

TEST(RacingAlphaSweepTest, RacesAlphaArmsWithPairedSeeds) {
  // Smallest meaningful sweep: two alphas, elimination disabled so the
  // shape contract (cells, PE/PF stats per arm) is exercised cheaply and
  // deterministically regardless of how the arms compare.
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.02);
  cfg.trainer.episodes = 1;
  cfg.eval.days = 1;
  RacingConfig racing;
  racing.min_replicas = racing.max_replicas = 2;
  auto sweep_or = RunRacingAlphaSweep(cfg, {0.0, 0.6}, 0.6, racing);
  ASSERT_TRUE(sweep_or.ok()) << sweep_or.status();
  const RacedAlphaSweep& sweep = *sweep_or;
  ASSERT_EQ(sweep.outcome.cells.size(), 2u);
  EXPECT_EQ(sweep.outcome.cells[0].name, "alpha=0");
  EXPECT_EQ(sweep.outcome.cells[1].name, "alpha=0.6");
  for (size_t arm = 0; arm < 2; ++arm) {
    EXPECT_EQ(sweep.outcome.cells[arm].replicas, 2);
    EXPECT_EQ(sweep.fleet_pe[arm].count(), 2);
    EXPECT_EQ(sweep.fleet_pf[arm].count(), 2);
    EXPECT_GT(sweep.fleet_pe[arm].mean(), 0.0);
  }
  EXPECT_GE(sweep.outcome.best_arm, 0);
}

}  // namespace
}  // namespace fairmove
