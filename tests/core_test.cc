// Tests of the core layer: Eq-5 reward, Eq 1-3 / 12-15 metrics, the
// semi-MDP Trainer bookkeeping, and the Evaluator harness.

#include <gtest/gtest.h>

#include <cmath>

#include "fairmove/core/evaluator.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/metrics.h"
#include "fairmove/core/reward.h"
#include "fairmove/core/trainer.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

// ---------------------------------------------------------------- Reward --

TEST(RewardConfigTest, ValidateBounds) {
  RewardConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.alpha = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RewardConfig{};
  cfg.gamma = 1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RewardConfig{};
  cfg.pe_scale_cny_per_hour = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(RewardComputerTest, PeTermConvertsSlotProfitToHourlyUnits) {
  RewardConfig cfg;
  cfg.pe_scale_cny_per_hour = 45.0;
  RewardComputer reward(cfg);
  // 7.5 CNY in a 10-min slot = 45 CNY/h = 1.0 normalised.
  EXPECT_NEAR(reward.PeTerm(7.5), 1.0, 1e-9);
  EXPECT_NEAR(reward.PeTerm(0.0), 0.0, 1e-9);
  EXPECT_LT(reward.PeTerm(-5.0), 0.0);
}

TEST(RewardComputerTest, FairnessPenaltyIsScaleFreeAndClipped) {
  RewardConfig cfg;
  cfg.fairness_clip = 2.0;
  cfg.fairness_cv2_scale = 0.025;
  RewardComputer reward(cfg);
  // CV^2 = var / mean^2, normalised by the typical-fleet cv^2 scale.
  EXPECT_NEAR(reward.FairnessPenalty(40.0, 40.0), 0.025 / 0.025, 1e-6);
  // Scale-free: doubling mean and quadrupling variance changes nothing.
  EXPECT_NEAR(reward.FairnessPenalty(80.0, 160.0),
              reward.FairnessPenalty(40.0, 40.0), 1e-6);
  EXPECT_DOUBLE_EQ(reward.FairnessPenalty(1.0, 1000.0), 2.0);  // clipped
  RewardConfig bad = cfg;
  bad.fairness_cv2_scale = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(RewardComputerTest, CombinedFollowsEq5Boundaries) {
  RewardConfig cfg;
  cfg.alpha = 1.0;
  EXPECT_DOUBLE_EQ(RewardComputer(cfg).Combined(0.8, 0.5), 0.8);
  cfg.alpha = 0.0;
  EXPECT_DOUBLE_EQ(RewardComputer(cfg).Combined(0.8, 0.5), -0.5);
  cfg.alpha = 0.6;
  EXPECT_NEAR(RewardComputer(cfg).Combined(1.0, 0.5),
              0.6 * 1.0 - 0.4 * 0.5, 1e-12);
}

TEST(RewardComputerTest, FairnessGradientSigns) {
  RewardComputer reward(RewardConfig{});
  // Over-earner earning now: negative adjustment.
  EXPECT_LT(reward.FairnessGradient(+20.0, 1.0), 0.0);
  // Under-earner earning now: positive adjustment.
  EXPECT_GT(reward.FairnessGradient(-20.0, 1.0), 0.0);
  // No earnings: no adjustment.
  EXPECT_DOUBLE_EQ(reward.FairnessGradient(20.0, 0.0), 0.0);
}

// --------------------------------------------------------------- Metrics --

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
  }
  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(MetricsTest, FleetMetricsMatchRawTotals) {
  GtPolicy policy;
  system_->sim().RunDays(&policy, 1);
  const FleetMetrics m = ComputeFleetMetrics(system_->sim());
  EXPECT_EQ(m.pe.size(), static_cast<size_t>(system_->sim().num_taxis()));
  double revenue = 0.0;
  int64_t trips = 0;
  const FleetState& fleet = system_->sim().fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    revenue += fleet.revenue_cny[static_cast<size_t>(id)];
    trips += fleet.cold[static_cast<size_t>(id)].num_trips;
  }
  EXPECT_DOUBLE_EQ(m.revenue_cny, revenue);
  EXPECT_EQ(m.trips, trips);
  EXPECT_NEAR(m.pf, m.pe.Variance(), 1e-9);
  EXPECT_GT(m.ServiceRate(), 0.3);
  EXPECT_LE(m.ServiceRate(), 1.0);
}

TEST_F(MetricsTest, HourlyAggregatesSumToDistributionTotals) {
  GtPolicy policy;
  system_->sim().RunDays(&policy, 1);
  const FleetMetrics m = ComputeFleetMetrics(system_->sim());
  int64_t trips = 0, charges = 0;
  for (int h = 0; h < kHoursPerDay; ++h) {
    trips += m.trips_by_hour[static_cast<size_t>(h)];
    charges += m.charges_by_hour[static_cast<size_t>(h)];
  }
  EXPECT_EQ(trips, static_cast<int64_t>(m.trip_cruise_min.size()));
  EXPECT_EQ(charges, static_cast<int64_t>(m.charge_idle_min.size()));
}

TEST(ComparisonMetricsTest, SelfComparisonIsZero) {
  FleetMetrics m;
  m.pe_sum = 100.0;
  m.pf = 10.0;
  m.trip_cruise_min.Add(5.0);
  m.charge_idle_min.Add(10.0);
  const ComparisonMetrics c = CompareToGroundTruth(m, m);
  EXPECT_DOUBLE_EQ(c.prct, 0.0);
  EXPECT_DOUBLE_EQ(c.prit, 0.0);
  EXPECT_DOUBLE_EQ(c.pipe, 0.0);
  EXPECT_DOUBLE_EQ(c.pipf, 0.0);
}

TEST(ComparisonMetricsTest, SignsFollowDefinitions) {
  FleetMetrics gt, d;
  gt.pe_sum = 100.0;
  gt.pf = 20.0;
  gt.trip_cruise_min.Add(10.0);
  gt.charge_idle_min.Add(30.0);
  d.pe_sum = 120.0;              // better efficiency
  d.pf = 10.0;                   // fairer
  d.trip_cruise_min.Add(8.0);    // less cruising
  d.charge_idle_min.Add(45.0);   // worse idling
  const ComparisonMetrics c = CompareToGroundTruth(gt, d);
  EXPECT_NEAR(c.pipe, 0.2, 1e-9);
  EXPECT_NEAR(c.pipf, 0.5, 1e-9);
  EXPECT_NEAR(c.prct, 0.2, 1e-9);
  EXPECT_NEAR(c.prit, -0.5, 1e-9);
}

TEST(ComparisonMetricsTest, EmptyDistributionsYieldZeroes) {
  FleetMetrics gt, d;
  const ComparisonMetrics c = CompareToGroundTruth(gt, d);
  EXPECT_DOUBLE_EQ(c.prct, 0.0);
  EXPECT_DOUBLE_EQ(c.pipe, 0.0);
}

// --------------------------------------------------------------- Trainer --

/// Policy that records how many transitions it received.
class CountingPolicy : public DisplacementPolicy {
 public:
  std::string name() const override { return "counting"; }
  void DecideActions(const Simulator& sim, const std::vector<TaxiObs>& vacant,
                     std::vector<Action>* actions) override {
    actions->clear();
    for (const TaxiObs& obs : vacant) {
      if (obs.must_charge) {
        actions->push_back(
            Action::Charge(sim.city().NearestStations(obs.region).front()));
      } else {
        actions->push_back(Action::Stay());
      }
    }
  }
  bool WantsTransitions() const override { return true; }
  void Learn(const std::vector<Transition>& transitions) override {
    received += static_cast<int64_t>(transitions.size());
    for (const Transition& t : transitions) {
      EXPECT_GE(t.action_index, 0);
      EXPECT_GE(t.discount, 0.0);
      EXPECT_LE(t.discount, 1.0);
      EXPECT_GE(t.region, 0);
      if (!t.terminal) EXPECT_GE(t.next_region, 0);
      last_rewards.push_back(t.reward);
    }
  }
  int64_t received = 0;
  std::vector<double> last_rewards;
};

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
    cfg.trainer.episodes = 1;
    cfg.trainer.slots_per_episode = 60;
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
  }
  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(TrainerTest, ConfigValidation) {
  TrainerConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.episodes = -1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = TrainerConfig{};
  cfg.slots_per_episode = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = TrainerConfig{};
  cfg.reward.alpha = 2.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST_F(TrainerTest, EveryDecisionBecomesExactlyOneTransition) {
  CountingPolicy policy;
  Trainer trainer = system_->MakeTrainer();
  const auto stats = trainer.Train(&policy);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].transitions, policy.received);
  EXPECT_GT(policy.received, 0);
}

TEST_F(TrainerTest, EvaluationEpisodeDoesNotLearn) {
  CountingPolicy policy;
  Trainer trainer = system_->MakeTrainer();
  const auto stats = trainer.RunEvaluationEpisode(&policy, 123, 60);
  EXPECT_EQ(policy.received, 0);
  EXPECT_GT(stats.transitions, 0);
}

TEST_F(TrainerTest, RewardsAreFiniteAndBounded) {
  CountingPolicy policy;
  Trainer trainer = system_->MakeTrainer();
  trainer.Train(&policy);
  ASSERT_FALSE(policy.last_rewards.empty());
  for (double r : policy.last_rewards) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_LT(std::abs(r), 100.0);
  }
}

TEST_F(TrainerTest, TrainingIsDeterministic) {
  CountingPolicy a, b;
  {
    Trainer trainer = system_->MakeTrainer();
    trainer.Train(&a);
  }
  {
    Trainer trainer = system_->MakeTrainer();
    trainer.Train(&b);
  }
  ASSERT_EQ(a.last_rewards.size(), b.last_rewards.size());
  for (size_t i = 0; i < a.last_rewards.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.last_rewards[i], b.last_rewards[i]);
  }
}

// ------------------------------------------------------------- Evaluator --

TEST(EvaluatorTest, PolicyKindNamesAndFactory) {
  EXPECT_STREQ(PolicyKindName(PolicyKind::kGroundTruth), "GT");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kFairMove), "FairMove");
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  for (PolicyKind kind :
       {PolicyKind::kGroundTruth, PolicyKind::kSd2, PolicyKind::kTql,
        PolicyKind::kDqn, PolicyKind::kTba, PolicyKind::kFairMove}) {
    auto policy = MakePolicy(kind, system->sim(), 1);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), PolicyKindName(kind));
  }
}

TEST(EvaluatorTest, GroundTruthSelfComparisonIsZero) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.eval.days = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Evaluator evaluator = system->MakeEvaluator();
  const MethodResult gt = evaluator.RunGroundTruth();
  EXPECT_EQ(gt.name, "GT");
  EXPECT_DOUBLE_EQ(gt.vs_gt.pipe, 0.0);
  EXPECT_DOUBLE_EQ(gt.vs_gt.pipf, 0.0);
  EXPECT_GT(gt.metrics.trips, 0);
}

TEST(EvaluatorTest, RunComparesAllRequestedMethods) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.eval.days = 1;
  cfg.trainer.episodes = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  const auto results =
      system->RunComparison({PolicyKind::kSd2, PolicyKind::kTql});
  ASSERT_EQ(results.size(), 3u);  // GT + 2
  EXPECT_EQ(results[0].name, "GT");
  EXPECT_EQ(results[1].name, "SD2");
  EXPECT_EQ(results[2].name, "TQL");
  for (const MethodResult& r : results) {
    EXPECT_GT(r.metrics.trips, 0);
    EXPECT_TRUE(std::isfinite(r.vs_gt.pipe));
    EXPECT_TRUE(std::isfinite(r.vs_gt.pipf));
  }
}

// -------------------------------------------------------- FairMoveConfig --

TEST(FairMoveConfigTest, FullShenzhenMatchesPaper) {
  const FairMoveConfig cfg = FairMoveConfig::FullShenzhen();
  EXPECT_EQ(cfg.city.num_regions, 491);
  EXPECT_EQ(cfg.city.num_stations, 123);
  EXPECT_EQ(cfg.sim.num_taxis, 20130);
  EXPECT_EQ(cfg.demand.num_taxis, 20130);
}

TEST(FairMoveConfigTest, ScaledKeepsDemandCoupledToFleet) {
  const FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.1);
  EXPECT_EQ(cfg.demand.num_taxis, cfg.sim.num_taxis);
  EXPECT_LT(cfg.sim.num_taxis, 20130);
  EXPECT_GE(cfg.sim.num_taxis, 50);
}

TEST(FairMoveSystemTest, CreateWiresTheStack) {
  auto system_or =
      FairMoveSystem::Create(FairMoveConfig::FullShenzhen().Scaled(0.04));
  ASSERT_TRUE(system_or.ok());
  auto& system = *system_or.value();
  EXPECT_EQ(system.sim().num_taxis(), system.config().sim.num_taxis);
  EXPECT_EQ(system.city().num_regions(), system.config().city.num_regions);
  EXPECT_EQ(FairMoveSystem::AllMethods().size(), 6u);
}

TEST(FairMoveSystemTest, CreateRejectsInvalidConfig) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.reward.alpha = 5.0;
  EXPECT_FALSE(FairMoveSystem::Create(cfg).ok());
  cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.sim.num_taxis = -1;
  EXPECT_FALSE(FairMoveSystem::Create(cfg).ok());
}

}  // namespace
}  // namespace fairmove
