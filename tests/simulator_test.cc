#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "fairmove/common/stats.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/demand/demand_model.h"
#include "fairmove/geo/city_builder.h"
#include "fairmove/pricing/tou_tariff.h"
#include "fairmove/sim/simulator.h"

namespace fairmove {
namespace {

/// Deterministic scripted policy: everyone stays unless forced to charge
/// (then: nearest station).
class StayPolicy : public DisplacementPolicy {
 public:
  std::string name() const override { return "stay"; }
  void DecideActions(const Simulator& sim, const std::vector<TaxiObs>& vacant,
                     std::vector<Action>* actions) override {
    actions->clear();
    for (const TaxiObs& obs : vacant) {
      if (obs.must_charge) {
        actions->push_back(
            Action::Charge(sim.city().NearestStations(obs.region).front()));
      } else {
        actions->push_back(Action::Stay());
      }
    }
  }
};

/// Charges at the first opportunity (soc below may-charge) — stresses the
/// station/queue machinery.
class EagerChargePolicy : public DisplacementPolicy {
 public:
  std::string name() const override { return "eager-charge"; }
  void DecideActions(const Simulator& sim, const std::vector<TaxiObs>& vacant,
                     std::vector<Action>* actions) override {
    actions->clear();
    for (const TaxiObs& obs : vacant) {
      if (obs.must_charge || obs.may_charge) {
        actions->push_back(
            Action::Charge(sim.city().NearestStations(obs.region).front()));
      } else {
        actions->push_back(Action::Stay());
      }
    }
  }
};

struct TestStack {
  std::unique_ptr<City> city;
  std::unique_ptr<DemandModel> demand;
  std::unique_ptr<Simulator> sim;
};

TestStack MakeStack(int num_taxis = 300, double scale = 0.05,
                    uint64_t seed = 77) {
  TestStack stack;
  CityConfig city_cfg = CityConfig{}.Scaled(scale);
  city_cfg.seed = seed;
  auto city_or = CityBuilder(city_cfg).Build();
  EXPECT_TRUE(city_or.ok());
  stack.city = std::make_unique<City>(std::move(city_or).value());
  DemandConfig demand_cfg;
  demand_cfg.num_taxis = num_taxis;
  stack.demand = std::make_unique<DemandModel>(
      DemandModel::Create(stack.city.get(), demand_cfg).value());
  SimConfig sim_cfg;
  sim_cfg.num_taxis = num_taxis;
  sim_cfg.seed = seed;
  auto sim_or = Simulator::Create(stack.city.get(), stack.demand.get(),
                                  TouTariff::Shenzhen(), sim_cfg);
  EXPECT_TRUE(sim_or.ok());
  stack.sim = std::move(sim_or).value();
  return stack;
}

TEST(SimConfigTest, ValidateCatchesBadKnobs) {
  SimConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.num_taxis = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.soc_force_charge = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.soc_may_charge = 0.1;  // below force threshold
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.charge_target_min = 0.1;  // below force threshold
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.initial_soc_min = 0.9;
  cfg.initial_soc_max = 0.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.renege_queue_factor = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.hustle_sigma = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  // NaN sails through ordinary range comparisons; Validate must sweep for
  // non-finite knobs explicitly.
  cfg = SimConfig{};
  cfg.renege_queue_factor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.charge_target_min = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(SimConfigTest, ValidateRejectsBadScale) {
  // Regression: Scaled() used to CHECK-abort on an out-of-range factor.
  // Now the poison value is recorded in sim.scale and surfaces as a
  // structured Status from Validate / Create instead of a process abort.
  SimConfig cfg;
  cfg.scale = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.scale = -0.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.scale = 1.5;  // over-scale: the (0, 1] contract is directional
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.scale = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.scale = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SimConfig{};
  cfg.scale = 0.05;
  EXPECT_TRUE(cfg.Validate().ok());

  // The full-config path: a bad factor handed to FairMoveConfig::Scaled
  // must flow through to a failed Create, not an abort, and the Status
  // message must name the offending knob.
  const FairMoveConfig bad = FairMoveConfig::BenchDefault().Scaled(-1.0);
  auto sys_or = FairMoveSystem::Create(bad);
  ASSERT_FALSE(sys_or.ok());
  EXPECT_NE(sys_or.status().message().find("scale"), std::string::npos);
  const FairMoveConfig nan_cfg = FairMoveConfig::BenchDefault().Scaled(
      std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(FairMoveSystem::Create(nan_cfg).ok());
}

TEST(SimulatorTest, CreateRejectsNullInputs) {
  TestStack stack = MakeStack();
  SimConfig cfg;
  EXPECT_FALSE(Simulator::Create(nullptr, stack.demand.get(),
                                 TouTariff::Shenzhen(), cfg)
                   .ok());
  EXPECT_FALSE(Simulator::Create(stack.city.get(), nullptr,
                                 TouTariff::Shenzhen(), cfg)
                   .ok());
}

TEST(SimulatorTest, ResetInitialisesFleet) {
  TestStack stack = MakeStack(200);
  const Simulator& sim = *stack.sim;
  EXPECT_EQ(sim.num_taxis(), 200);
  EXPECT_EQ(sim.now().index, 0);
  const FleetState& fleet = sim.fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    const size_t k = static_cast<size_t>(id);
    EXPECT_EQ(fleet.phase[k], TaxiPhase::kCruising);
    EXPECT_GE(fleet.soc[k], sim.config().initial_soc_min - 1e-9);
    EXPECT_LE(fleet.soc[k], sim.config().initial_soc_max + 1e-9);
    EXPECT_GE(fleet.region[k], 0);
    EXPECT_LT(fleet.region[k], sim.city().num_regions());
  }
}

TEST(SimulatorTest, HustleIsPositiveAndHeterogeneous) {
  TestStack stack = MakeStack(300);
  double lo = 1e9, hi = 0.0;
  for (TaxiId id = 0; id < stack.sim->num_taxis(); ++id) {
    const double h = stack.sim->hustle(id);
    EXPECT_GT(h, 0.0);
    lo = std::min(lo, h);
    hi = std::max(hi, h);
  }
  EXPECT_GT(hi / lo, 2.0);  // meaningfully heterogeneous
}

TEST(SimulatorTest, StepAdvancesTime) {
  TestStack stack = MakeStack(100);
  StayPolicy policy;
  stack.sim->Step(&policy);
  EXPECT_EQ(stack.sim->now().index, 1);
  stack.sim->RunSlots(&policy, 10);
  EXPECT_EQ(stack.sim->now().index, 11);
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  TestStack a = MakeStack(150, 0.05, 9);
  TestStack b = MakeStack(150, 0.05, 9);
  StayPolicy pa, pb;
  a.sim->RunSlots(&pa, 100);
  b.sim->RunSlots(&pb, 100);
  EXPECT_EQ(a.sim->trace().total_trips(), b.sim->trace().total_trips());
  EXPECT_EQ(a.sim->total_requests(), b.sim->total_requests());
  for (TaxiId id = 0; id < a.sim->num_taxis(); ++id) {
    const size_t k = static_cast<size_t>(id);
    EXPECT_DOUBLE_EQ(a.sim->fleet().revenue_cny[k],
                     b.sim->fleet().revenue_cny[k]);
    EXPECT_DOUBLE_EQ(a.sim->fleet().soc[k], b.sim->fleet().soc[k]);
  }
}

TEST(SimulatorTest, DifferentSeedsDiverge) {
  TestStack a = MakeStack(150, 0.05, 9);
  TestStack b = MakeStack(150, 0.05, 10);
  StayPolicy pa, pb;
  a.sim->RunSlots(&pa, 50);
  b.sim->RunSlots(&pb, 50);
  EXPECT_NE(a.sim->total_requests(), b.sim->total_requests());
}

TEST(SimulatorTest, ResetIsIdempotentReplay) {
  TestStack stack = MakeStack(120);
  StayPolicy policy;
  stack.sim->RunSlots(&policy, 60);
  const int64_t trips_first = stack.sim->trace().total_trips();
  stack.sim->Reset();
  stack.sim->RunSlots(&policy, 60);
  EXPECT_EQ(stack.sim->trace().total_trips(), trips_first);
}

TEST(SimulatorTest, TimeAccountingSumsToWallClock) {
  TestStack stack = MakeStack(200);
  StayPolicy policy;
  const int64_t slots = 200;
  stack.sim->RunSlots(&policy, slots);
  const FleetState& fleet = stack.sim->fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    const double expected =
        slots * kMinutesPerSlot +
        fleet.cold[static_cast<size_t>(id)].num_strandings *
            stack.sim->config().stranding_penalty_min;
    EXPECT_NEAR(fleet.on_duty_min(id), expected, 1e-6) << "taxi " << id;
  }
}

TEST(SimulatorTest, SocStaysInUnitInterval) {
  TestStack stack = MakeStack(200);
  EagerChargePolicy policy;
  for (int i = 0; i < 300; ++i) {
    stack.sim->Step(&policy);
    for (double soc : stack.sim->fleet().soc) {
      EXPECT_GE(soc, 0.0);
      EXPECT_LE(soc, 1.0 + 1e-9);
    }
  }
}

TEST(SimulatorTest, StationOccupancyNeverExceedsPoints) {
  TestStack stack = MakeStack(400);
  EagerChargePolicy policy;
  for (int i = 0; i < 250; ++i) {
    stack.sim->Step(&policy);
    for (StationId s = 0; s < stack.sim->city().num_stations(); ++s) {
      const StationQueue& q = stack.sim->station_queue(s);
      EXPECT_LE(q.occupied(), q.num_points());
      EXPECT_GE(q.occupied(), 0);
    }
  }
}

TEST(SimulatorTest, PhaseAndStationBookkeepingConsistent) {
  TestStack stack = MakeStack(300);
  EagerChargePolicy policy;
  stack.sim->RunSlots(&policy, 150);
  int charging = 0, queuing = 0;
  for (TaxiPhase phase : stack.sim->fleet().phase) {
    charging += phase == TaxiPhase::kCharging ? 1 : 0;
    queuing += phase == TaxiPhase::kQueuing ? 1 : 0;
  }
  int occupied = 0, waiting = 0;
  for (StationId s = 0; s < stack.sim->city().num_stations(); ++s) {
    occupied += stack.sim->station_queue(s).occupied();
    waiting += stack.sim->station_queue(s).waiting();
  }
  EXPECT_EQ(charging, occupied);
  EXPECT_EQ(queuing, waiting);
}

TEST(SimulatorTest, RequestConservation) {
  TestStack stack = MakeStack(250);
  StayPolicy policy;
  stack.sim->RunSlots(&policy, 144);
  int64_t pending = 0;
  for (RegionId r = 0; r < stack.sim->city().num_regions(); ++r) {
    pending += stack.sim->PendingRequests(r);
  }
  EXPECT_EQ(stack.sim->total_requests(),
            stack.sim->trace().total_trips() +
                stack.sim->trace().expired_requests() + pending);
}

TEST(SimulatorTest, TripsMatchPerTaxiCounters) {
  TestStack stack = MakeStack(200);
  StayPolicy policy;
  stack.sim->RunSlots(&policy, 144);
  int64_t trips = 0;
  double revenue = 0.0;
  const FleetState& fleet = stack.sim->fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    trips += fleet.cold[static_cast<size_t>(id)].num_trips;
    revenue += fleet.revenue_cny[static_cast<size_t>(id)];
  }
  EXPECT_EQ(trips, stack.sim->trace().total_trips());
  // Fares are credited at drop-off; trips still in progress at the end are
  // recorded but unpaid, so the per-taxi revenue is at most the trace total.
  EXPECT_LE(revenue, stack.sim->trace().total_fares() + 1e-6);
  EXPECT_GT(revenue, 0.0);
}

TEST(SimulatorTest, LowBatteryTaxisEventuallyCharge) {
  TestStack stack = MakeStack(150);
  StayPolicy policy;
  stack.sim->RunDays(&policy, 2);
  int64_t charges = 0;
  for (const TaxiCold& cold : stack.sim->fleet().cold) {
    charges += cold.num_charges;
  }
  EXPECT_GT(charges, stack.sim->num_taxis() / 2)
      << "a two-day run must include plenty of charging";
  EXPECT_EQ(charges, stack.sim->trace().total_charge_events());
}

TEST(SimulatorTest, ChargeEventsAreWellFormed) {
  TestStack stack = MakeStack(200);
  EagerChargePolicy policy;
  stack.sim->RunDays(&policy, 1);
  ASSERT_GT(stack.sim->trace().charge_events().size(), 0u);
  for (const ChargeEvent& e : stack.sim->trace().charge_events()) {
    EXPECT_LE(e.seek_slot, e.plugin_slot);
    EXPECT_LT(e.plugin_slot, e.finish_slot);
    EXPECT_GE(e.idle_min, 0.0f);
    EXPECT_GT(e.charge_min, 0.0f);
    EXPECT_GT(e.kwh, 0.0f);
    EXPECT_GT(e.cost_cny, 0.0f);
    EXPECT_GT(e.soc_end, e.soc_start);
    // Cost must be within the tariff band for the energy delivered.
    EXPECT_GE(e.cost_cny, e.kwh * kOffPeakRate - 1e-3);
    EXPECT_LE(e.cost_cny, e.kwh * kPeakRate + 1e-3);
  }
}

TEST(SimulatorTest, TripRecordsAreWellFormed) {
  TestStack stack = MakeStack(200);
  StayPolicy policy;
  stack.sim->RunDays(&policy, 1);
  ASSERT_GT(stack.sim->trace().trips().size(), 0u);
  for (const TripRecord& t : stack.sim->trace().trips()) {
    EXPECT_LT(t.pickup_slot, t.dropoff_slot);
    EXPECT_GE(t.cruise_min, 0.0f);
    EXPECT_GT(t.fare_cny, 0.0f);
    EXPECT_GE(t.distance_km, 0.0f);
    EXPECT_GE(t.origin, 0);
    EXPECT_LT(t.origin, stack.sim->city().num_regions());
    EXPECT_GE(t.dest, 0);
    EXPECT_LT(t.dest, stack.sim->city().num_regions());
  }
}

TEST(SimulatorTest, DecisionsOnlyForVacantTaxis) {
  TestStack stack = MakeStack(150);
  StayPolicy policy;
  for (int i = 0; i < 100; ++i) {
    const int64_t slot = stack.sim->now().index;
    stack.sim->Step(&policy);
    for (const Decision& d : stack.sim->last_decisions()) {
      EXPECT_GE(d.taxi, 0);
      EXPECT_LT(d.taxi, stack.sim->num_taxis());
      EXPECT_GE(d.action_index, 0);
      EXPECT_LT(d.action_index, stack.sim->action_space().size());
      (void)slot;
    }
  }
}

TEST(SimulatorTest, NullPolicyRunsForcedChargingOnly) {
  TestStack stack = MakeStack(150);
  stack.sim->RunDays(nullptr, 1);
  // Taxis must still have charged (forced at the threshold) and survived.
  int64_t charges = 0;
  const FleetState& fleet = stack.sim->fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    charges += fleet.cold[static_cast<size_t>(id)].num_charges;
    EXPECT_GE(fleet.soc[static_cast<size_t>(id)], 0.0);
  }
  EXPECT_GT(charges, 0);
}

TEST(SimulatorTest, StrandingIsRareUnderForcedCharging) {
  TestStack stack = MakeStack(250);
  StayPolicy policy;
  stack.sim->RunDays(&policy, 2);
  int64_t strandings = 0;
  for (const TaxiCold& cold : stack.sim->fleet().cold) {
    strandings += cold.num_strandings;
  }
  // Forced charging at 20% SoC leaves 80 km of range: stranding should be
  // an exceptional event, not routine.
  EXPECT_LT(strandings, stack.sim->num_taxis() / 20);
}

TEST(SimulatorTest, SlotProfitsMatchTotalsDelta) {
  TestStack stack = MakeStack(150);
  StayPolicy policy;
  std::vector<double> cum(static_cast<size_t>(stack.sim->num_taxis()), 0.0);
  for (int i = 0; i < 144; ++i) {
    stack.sim->Step(&policy);
    for (TaxiId id = 0; id < stack.sim->num_taxis(); ++id) {
      cum[static_cast<size_t>(id)] +=
          stack.sim->slot_profits()[static_cast<size_t>(id)];
    }
  }
  for (TaxiId id = 0; id < stack.sim->num_taxis(); ++id) {
    EXPECT_NEAR(cum[static_cast<size_t>(id)],
                stack.sim->fleet().profit_cny(id), 1e-6);
  }
}

TEST(SimulatorTest, FleetPeStatsMatchManualComputation) {
  TestStack stack = MakeStack(120);
  StayPolicy policy;
  stack.sim->RunSlots(&policy, 100);
  RunningStats manual;
  for (TaxiId id = 0; id < stack.sim->num_taxis(); ++id) {
    manual.Add(stack.sim->fleet().hourly_pe(id));
  }
  EXPECT_NEAR(stack.sim->FleetMeanPe(), manual.mean(), 1e-9);
  EXPECT_NEAR(stack.sim->FleetPeVariance(), manual.variance(), 1e-9);
}

TEST(SimulatorTest, VacantCountsMatchPhases) {
  TestStack stack = MakeStack(180);
  StayPolicy policy;
  stack.sim->RunSlots(&policy, 37);
  int vacant_by_count = 0;
  for (RegionId r = 0; r < stack.sim->city().num_regions(); ++r) {
    vacant_by_count += stack.sim->VacantCount(r);
  }
  int cruising = 0;
  for (TaxiPhase phase : stack.sim->fleet().phase) {
    cruising += phase == TaxiPhase::kCruising ? 1 : 0;
  }
  EXPECT_EQ(vacant_by_count, cruising);
}

// Invariants hold across fleet sizes and seeds (parameterized sweep).
class SimulatorSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SimulatorSweep, CoreInvariantsHold) {
  TestStack stack =
      MakeStack(std::get<0>(GetParam()), 0.05, std::get<1>(GetParam()));
  EagerChargePolicy policy;
  stack.sim->RunSlots(&policy, 144);
  // Conservation and bounds.
  int64_t pending = 0;
  for (RegionId r = 0; r < stack.sim->city().num_regions(); ++r) {
    pending += stack.sim->PendingRequests(r);
  }
  EXPECT_EQ(stack.sim->total_requests(),
            stack.sim->trace().total_trips() +
                stack.sim->trace().expired_requests() + pending);
  const FleetState& fleet = stack.sim->fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    const size_t k = static_cast<size_t>(id);
    EXPECT_GE(fleet.soc[k], 0.0);
    EXPECT_LE(fleet.soc[k], 1.0 + 1e-9);
    EXPECT_GE(fleet.revenue_cny[k], 0.0);
    EXPECT_GE(fleet.charge_cost_cny[k], 0.0);
  }
  for (StationId s = 0; s < stack.sim->city().num_stations(); ++s) {
    EXPECT_LE(stack.sim->station_queue(s).occupied(),
              stack.sim->station_queue(s).num_points());
  }
}

INSTANTIATE_TEST_SUITE_P(
    FleetsAndSeeds, SimulatorSweep,
    ::testing::Combine(::testing::Values(60, 200, 500),
                       ::testing::Values(1u, 7u, 42u)));

}  // namespace
}  // namespace fairmove
