// Tests of the tooling added on top of the core reproduction: CLI flags,
// the repeated-experiment runner, GeoJSON export, terrain carving, station
// utilization and Double DQN.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fairmove/common/flags.h"
#include "fairmove/core/experiment.h"
#include "fairmove/core/group_fairness.h"
#include "fairmove/data/analysis.h"
#include "fairmove/geo/geojson.h"
#include "fairmove/rl/dqn_policy.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

// ----------------------------------------------------------------- Flags --

Flags MustParse(std::vector<const char*> argv,
                std::vector<std::string> known = {}) {
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data(),
                            std::move(known));
  EXPECT_TRUE(flags.ok()) << flags.status();
  return std::move(flags).value();
}

TEST(FlagsTest, ParsesAllForms) {
  const Flags flags = MustParse(
      {"prog", "--scale=0.5", "--days=3", "--verbose", "positional"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0).value(), 0.5);
  EXPECT_EQ(flags.GetInt("days", 0).value(), 3);
  EXPECT_TRUE(flags.GetBool("verbose", false).value());
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags flags = MustParse({"prog"});
  EXPECT_EQ(flags.GetString("name", "dflt"), "dflt");
  EXPECT_EQ(flags.GetInt("n", 7).value(), 7);
  EXPECT_FALSE(flags.GetBool("quiet", false).value());
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  const Flags flags = MustParse({"prog", "--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(flags.Has("a"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, SchemaRejectsUnknownAndDuplicates) {
  const char* argv1[] = {"prog", "--oops=1"};
  EXPECT_FALSE(Flags::Parse(2, argv1, {"scale"}).ok());
  const char* argv2[] = {"prog", "--a=1", "--a=2"};
  EXPECT_FALSE(Flags::Parse(3, argv2).ok());
}

TEST(FlagsTest, TypedErrorsOnMalformedValues) {
  const Flags flags = MustParse({"prog", "--n=abc", "--b=maybe"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetBool("b", false).ok());
}

// --------------------------------------------------------------- GeoJSON --

TEST(GeoJsonTest, OutputContainsAllFeatures) {
  auto city = std::move(CityBuilder(CityConfig{}.Scaled(0.06)).Build()).value();
  const std::string json = CityToGeoJson(city);
  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  // One polygon per region, one point per station.
  size_t polygons = 0, points = 0, pos = 0;
  while ((pos = json.find("\"Polygon\"", pos)) != std::string::npos) {
    ++polygons;
    pos += 9;
  }
  pos = 0;
  while ((pos = json.find("\"Point\"", pos)) != std::string::npos) {
    ++points;
    pos += 7;
  }
  EXPECT_EQ(polygons, static_cast<size_t>(city.num_regions()));
  EXPECT_EQ(points, static_cast<size_t>(city.num_stations()));
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(GeoJsonTest, WritesFile) {
  auto city = std::move(CityBuilder(CityConfig{}.Scaled(0.05)).Build()).value();
  const std::string path = ::testing::TempDir() + "/fairmove_city.geojson";
  ASSERT_TRUE(WriteCityGeoJson(city, path).ok());
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

// --------------------------------------------------------------- Terrain --

TEST(TerrainTest, CarvedCityStillConnectedWithExactRegionCount) {
  CityConfig cfg = CityConfig{}.Scaled(0.15);
  cfg.obstacle_fraction = 0.15;
  auto city_or = CityBuilder(cfg).Build();
  ASSERT_TRUE(city_or.ok()) << city_or.status();
  const City& city = city_or.value();
  EXPECT_EQ(city.num_regions(), cfg.num_regions);
  // City's constructor CHECKs connectivity; also spot-check reachability.
  for (RegionId r = 0; r < city.num_regions(); r += 7) {
    EXPECT_LT(city.TravelMinutes(0, r), 1e6);
  }
}

TEST(TerrainTest, CarvingCreatesIrregularAdjacency) {
  CityConfig flat = CityConfig{}.Scaled(0.2);
  CityConfig carved = flat;
  carved.obstacle_fraction = 0.2;
  auto flat_city = std::move(CityBuilder(flat).Build()).value();
  auto carved_city = std::move(CityBuilder(carved).Build()).value();
  auto boundaryish = [](const City& city) {
    int below_max = 0;
    for (const Region& r : city.regions()) {
      below_max += static_cast<int>(r.neighbors.size()) < 8 ? 1 : 0;
    }
    return below_max;
  };
  // Terrain adds interior boundaries: more regions with missing neighbours.
  EXPECT_GT(boundaryish(carved_city), boundaryish(flat_city));
}

TEST(TerrainTest, RejectsExcessiveCarving) {
  CityConfig cfg = CityConfig{}.Scaled(0.1);
  cfg.obstacle_fraction = 0.55;
  EXPECT_FALSE(CityBuilder(cfg).Build().ok());
}

// -------------------------------------------------- Station utilization --

TEST(StationUtilizationTest, BoundedAndShapedByChargingPeaks) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunDays(&policy, 2);
  const auto utilization = StationUtilizationByHour(system->sim(), 2);
  ASSERT_EQ(static_cast<int>(utilization.size()),
            system->city().num_stations());
  double valley = 0.0, morning = 0.0;
  for (const auto& row : utilization) {
    for (int h = 0; h < kHoursPerDay; ++h) {
      EXPECT_GE(row[static_cast<size_t>(h)], 0.0);
      EXPECT_LE(row[static_cast<size_t>(h)], 1.0 + 1e-9);
    }
    valley += row[4];
    morning += row[9];
  }
  // The 4am charging peak loads stations more than the 9am business peak.
  EXPECT_GT(valley, morning);
}

// -------------------------------------------------------- RepeatedRunner --

TEST(RepeatedComparisonTest, AggregatesAcrossSeeds) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 1;
  cfg.eval.days = 1;
  auto result_or =
      RunRepeatedComparison(cfg, {PolicyKind::kSd2}, /*repeats=*/2);
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RepeatedComparison& result = result_or.value();
  EXPECT_EQ(result.repeats, 2);
  ASSERT_EQ(result.methods.size(), 2u);  // GT + SD2
  EXPECT_EQ(result.methods[0].name, "GT");
  EXPECT_EQ(result.methods[1].name, "SD2");
  EXPECT_EQ(result.methods[1].pipe.count(), 2);
  // Different seeds -> non-identical results (std > 0 almost surely).
  EXPECT_GT(result.methods[1].pe_mean.stddev(), 0.0);
  const Table table = result.ToTable();
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(DriverGroupsByPerformanceTest, QuantilesSortByHustle) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto groups_or = DriverGroups::ByPerformance(system->sim(), 5);
  ASSERT_TRUE(groups_or.ok());
  const DriverGroups& groups = groups_or.value();
  // Every member of a higher group out-hustles every member of a lower one
  // (quantile split), and sizes are balanced within 1.
  double prev_max = 0.0;
  for (int g = 0; g < groups.num_groups(); ++g) {
    double lo = 1e18, hi = 0.0;
    for (TaxiId id : groups.members(g)) {
      lo = std::min(lo, system->sim().hustle(id));
      hi = std::max(hi, system->sim().hustle(id));
    }
    EXPECT_GE(lo, prev_max - 1e-12) << "group " << g;
    prev_max = hi;
    EXPECT_NEAR(static_cast<double>(groups.members(g).size()),
                system->sim().num_taxis() / 5.0, 1.0);
  }
}

TEST(RepeatConfigTest, DerivesDecorrelatedPinnedSeeds) {
  FairMoveConfig base = FairMoveConfig::FullShenzhen();
  base.sim.seed = 42;
  base.city.seed = 42;
  base.trainer.seed_base = 9000;
  base.eval.seed = 7;
  const FairMoveConfig r0 = RepeatConfig(base, 0);
  const FairMoveConfig r3 = RepeatConfig(base, 3);
  // Pinned streams (see DeriveSeedTest.PinnedValues): sim and city share a
  // base seed yet get different namespaces, hence different streams.
  EXPECT_EQ(r0.sim.seed, DeriveSeed(42, kSeedNsSim, 0));
  EXPECT_EQ(r0.city.seed, DeriveSeed(42, kSeedNsCity, 0));
  EXPECT_EQ(r0.trainer.seed_base, DeriveSeed(9000, kSeedNsTrainer, 0));
  EXPECT_EQ(r3.eval.seed, DeriveSeed(7, kSeedNsEval, 3));
  EXPECT_EQ(r0.sim.seed, 0x16076ce4ec094afdULL);
  EXPECT_EQ(r0.city.seed, 0x14bd804e4d5493c4ULL);
  EXPECT_EQ(r3.eval.seed, 0x8b9ac8b2f36f34daULL);
  EXPECT_NE(r0.sim.seed, r0.city.seed);
  // Non-seed config is untouched.
  EXPECT_EQ(r0.trainer.episodes, base.trainer.episodes);
  EXPECT_EQ(r0.eval.days, base.eval.days);
}

TEST(RepeatConfigTest, ZeroTrainerSeedBaseIsPreserved) {
  FairMoveConfig base = FairMoveConfig::FullShenzhen();
  base.trainer.seed_base = 0;  // "reuse the sim seed" sentinel
  EXPECT_EQ(RepeatConfig(base, 0).trainer.seed_base, 0u);
  EXPECT_EQ(RepeatConfig(base, 5).trainer.seed_base, 0u);
}

TEST(RepeatedComparisonTest, RejectsBadRepeatCount) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  EXPECT_FALSE(RunRepeatedComparison(cfg, {}, 0).ok());
}

// ------------------------------------------------------------ Double DQN --

TEST(DoubleDqnTest, TrainsAndActs) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  DqnPolicy::Options options;
  options.double_dqn = true;
  options.min_replay = 32;
  options.minibatch = 16;
  DqnPolicy policy(system->sim(), options);
  policy.SetTraining(true);
  Trainer trainer = system->MakeTrainer();
  TrainerConfig tc = trainer.config();
  Trainer t2(&system->sim(), tc);
  // One short training episode must run without violating any contract.
  FairMoveConfig short_cfg = cfg;
  short_cfg.trainer.episodes = 1;
  short_cfg.trainer.slots_per_episode = 60;
  Trainer short_trainer(&system->sim(), short_cfg.trainer);
  const auto stats = short_trainer.Train(&policy);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GT(stats[0].transitions, 0);
}

}  // namespace
}  // namespace fairmove
