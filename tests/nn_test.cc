#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fairmove/nn/adam.h"
#include "fairmove/nn/matrix.h"
#include "fairmove/nn/mlp.h"

namespace fairmove {
namespace {

// ---------------------------------------------------------------- Matrix --

TEST(MatrixTest, ResizeAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2), b(2, 2), out;
  a.At(0, 0) = 1; a.At(0, 1) = 2; a.At(1, 0) = 3; a.At(1, 1) = 4;
  b.At(0, 0) = 5; b.At(0, 1) = 6; b.At(1, 0) = 7; b.At(1, 1) = 8;
  MatMul(a, b, &out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 19);
  EXPECT_FLOAT_EQ(out.At(0, 1), 22);
  EXPECT_FLOAT_EQ(out.At(1, 0), 43);
  EXPECT_FLOAT_EQ(out.At(1, 1), 50);
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a(1, 3), b(3, 2), out;
  for (int j = 0; j < 3; ++j) a.At(0, j) = static_cast<float>(j + 1);
  for (int i = 0; i < 3; ++i) {
    b.At(i, 0) = 1.0f;
    b.At(i, 1) = static_cast<float>(i);
  }
  MatMul(a, b, &out);
  EXPECT_EQ(out.rows(), 1);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_FLOAT_EQ(out.At(0, 0), 6.0f);   // 1+2+3
  EXPECT_FLOAT_EQ(out.At(0, 1), 8.0f);   // 0+2+6
}

TEST(MatrixTest, TransposedProductsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Matrix a(4, 3), b(4, 5);
  a.RandomGaussian(rng, 1.0);
  b.RandomGaussian(rng, 1.0);
  // a^T * b via MatMulTransA vs building a^T by hand.
  Matrix at(3, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  Matrix expected, got;
  MatMul(at, b, &expected);
  MatMulTransA(a, b, &got);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-5);
  }
  // a * b^T via MatMulTransB vs hand-built b^T (shapes: [4x3]*[5x3]^T).
  Matrix c(5, 3);
  c.RandomGaussian(rng, 1.0);
  Matrix ct(3, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) ct.At(j, i) = c.At(i, j);
  }
  Matrix expected2, got2;
  MatMul(a, ct, &expected2);
  MatMulTransB(a, c, &got2);
  for (size_t i = 0; i < got2.size(); ++i) {
    EXPECT_NEAR(got2.data()[i], expected2.data()[i], 1e-5);
  }
}

// Regression: the kernels used to skip a(i, p) == 0 entries, which silently
// dropped 0 * NaN contributions from a diverged weight matrix — a network
// whose weights went NaN could still emit finite-looking outputs and slip
// past output-side NaN screening (DivergenceGuard). 0 * NaN must be NaN.
TEST(MatrixTest, MatMulPropagatesNanThroughZeroInput) {
  Matrix a(1, 2), b(2, 3), out;
  a.At(0, 0) = 0.0f;  // the zero "input feature"
  a.At(0, 1) = 1.0f;
  b.At(0, 0) = std::nanf("");  // NaN weight reached only via the zero entry
  b.At(0, 1) = 2.0f;
  b.At(1, 2) = 3.0f;
  MatMul(a, b, &out);
  EXPECT_TRUE(std::isnan(out.At(0, 0)));
  EXPECT_FALSE(std::isnan(out.At(0, 2)));
}

TEST(MatrixTest, MatMulTransAPropagatesNanThroughZeroInput) {
  Matrix a(2, 2), b(2, 3), out;
  a.At(0, 0) = 0.0f;  // column 0 of a^T row 0 is zero
  a.At(1, 0) = 1.0f;
  b.At(0, 0) = std::nanf("");
  b.At(1, 1) = 2.0f;
  MatMulTransA(a, b, &out);
  EXPECT_TRUE(std::isnan(out.At(0, 0)));
  EXPECT_FALSE(std::isnan(out.At(1, 1)));
}

TEST(MatrixTest, MatMulInfTimesZeroIsNan) {
  Matrix a(1, 1), b(1, 1), out;
  a.At(0, 0) = 0.0f;
  b.At(0, 0) = std::numeric_limits<float>::infinity();
  MatMul(a, b, &out);
  EXPECT_TRUE(std::isnan(out.At(0, 0)));
}

TEST(MatrixTest, AddRowBiasAndSumRows) {
  Matrix m(2, 3);
  AddRowBias({1.0f, 2.0f, 3.0f}, &m);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(1, 2), 3.0f);
  std::vector<float> sums;
  SumRows(m, &sums);
  EXPECT_FLOAT_EQ(sums[0], 2.0f);
  EXPECT_FLOAT_EQ(sums[1], 4.0f);
  EXPECT_FLOAT_EQ(sums[2], 6.0f);
}

// ------------------------------------------------------------------- Mlp --

TEST(MlpTest, ShapesAndParamCount) {
  Mlp net({4, 8, 3}, Activation::kRelu, 1);
  EXPECT_EQ(net.input_dim(), 4);
  EXPECT_EQ(net.output_dim(), 3);
  EXPECT_EQ(net.num_layers(), 2);
  EXPECT_EQ(net.num_parameters(), 4u * 8 + 8 + 8 * 3 + 3);
}

TEST(MlpTest, ForwardMatchesManualLinearNetwork) {
  // A 2->2 linear (no hidden) network is just Wx + b.
  Mlp net({2, 2}, Activation::kRelu, 1);
  auto& w = net.weights()[0];
  w.At(0, 0) = 1.0f; w.At(0, 1) = 2.0f;
  w.At(1, 0) = 3.0f; w.At(1, 1) = 4.0f;
  net.biases()[0] = {0.5f, -0.5f};
  const auto y = net.Forward1({1.0f, 1.0f});
  EXPECT_FLOAT_EQ(y[0], 4.5f);   // 1+3+0.5
  EXPECT_FLOAT_EQ(y[1], 5.5f);   // 2+4-0.5
}

TEST(MlpTest, ReluZeroesNegativePreactivations) {
  Mlp net({1, 1, 1}, Activation::kRelu, 1);
  net.weights()[0].At(0, 0) = -1.0f;
  net.biases()[0] = {0.0f};
  net.weights()[1].At(0, 0) = 1.0f;
  net.biases()[1] = {0.25f};
  // Positive input -> hidden pre-activation negative -> ReLU 0 -> bias only.
  EXPECT_FLOAT_EQ(net.Forward1({3.0f})[0], 0.25f);
}

TEST(MlpTest, BatchedForwardMatchesSingle) {
  Mlp net({5, 16, 4}, Activation::kTanh, 7);
  Rng rng(9);
  Matrix x(6, 5);
  x.RandomGaussian(rng, 1.0);
  Matrix y;
  net.Forward(x, &y);
  for (int i = 0; i < 6; ++i) {
    std::vector<float> row(x.Row(i), x.Row(i) + 5);
    const auto single = net.Forward1(row);
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(y.At(i, j), single[static_cast<size_t>(j)], 1e-5);
    }
  }
}

// The hard invariant behind the batched decision path: batched Forward must
// be BIT-IDENTICAL (exact float equality, not NEAR) to per-row Forward1 —
// per-row accumulation order is pinned regardless of batch size, which is
// what lets DecideActions batch without perturbing seed-reproducible runs.
class BatchedBitExactness : public ::testing::TestWithParam<Activation> {};

TEST_P(BatchedBitExactness, ForwardMatchesForward1Exactly) {
  Mlp net({17, 32, 24, 9}, GetParam(), 23);
  Rng rng(29);
  Mlp::Workspace ws;
  // Varying batch sizes through one reused workspace also proves no stale
  // state leaks between calls.
  for (int batch : {1, 3, 20, 7}) {
    Matrix x(batch, 17);
    x.RandomGaussian(rng, 1.5);
    Matrix y;
    net.Forward(x, &y, &ws);
    ASSERT_EQ(y.rows(), batch);
    ASSERT_EQ(y.cols(), 9);
    for (int i = 0; i < batch; ++i) {
      const std::vector<float> row(x.Row(i), x.Row(i) + 17);
      const std::vector<float> single = net.Forward1(row);
      for (int j = 0; j < 9; ++j) {
        // Exact bitwise equality, deliberately not EXPECT_NEAR.
        EXPECT_EQ(y.At(i, j), single[static_cast<size_t>(j)])
            << "batch " << batch << " row " << i << " col " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, BatchedBitExactness,
                         ::testing::Values(Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kLinear));

TEST(MlpTest, WorkspaceForwardMatchesPlainForward) {
  Mlp net({6, 12, 12, 4}, Activation::kTanh, 3);
  Rng rng(5);
  Matrix x(8, 6);
  x.RandomGaussian(rng, 1.0);
  Matrix plain, reused;
  net.Forward(x, &plain);
  Mlp::Workspace ws;
  net.Forward(x, &reused, &ws);
  net.Forward(x, &reused, &ws);  // second pass through warm buffers
  ASSERT_EQ(plain.size(), reused.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain.data()[i], reused.data()[i]);
  }
}

TEST(MlpTest, WorkspaceBackwardMatchesPlainBackward) {
  Mlp net({5, 10, 3}, Activation::kRelu, 7);
  Rng rng(13);
  Matrix x(6, 5), grad_out(6, 3);
  x.RandomGaussian(rng, 1.0);
  grad_out.RandomGaussian(rng, 0.1);
  Mlp::Tape tape;
  net.ForwardTape(x, &tape);
  Mlp::Gradients plain = net.MakeGradients();
  net.Backward(tape, grad_out, &plain);
  Mlp::Gradients reused = net.MakeGradients();
  Mlp::Workspace ws;
  net.Backward(tape, grad_out, &reused, &ws);
  net.ForwardTape(x, &tape);  // tape buffer reuse must not change results
  Mlp::Gradients again = net.MakeGradients();
  net.Backward(tape, grad_out, &again, &ws);
  for (size_t l = 0; l < plain.dw.size(); ++l) {
    for (size_t i = 0; i < plain.dw[l].size(); ++i) {
      EXPECT_EQ(plain.dw[l].data()[i], reused.dw[l].data()[i]);
      EXPECT_EQ(plain.dw[l].data()[i], again.dw[l].data()[i]);
    }
    for (size_t i = 0; i < plain.db[l].size(); ++i) {
      EXPECT_EQ(plain.db[l][i], reused.db[l][i]);
      EXPECT_EQ(plain.db[l][i], again.db[l][i]);
    }
  }
}

TEST(MlpTest, NanWeightsReachTheOutputOnZeroFeatures) {
  // End-to-end version of the MatMul regression: a network whose first
  // layer holds a NaN weight must emit NaN even when the matching input
  // feature is 0 (e.g. a one-hot miss).
  Mlp net({2, 2}, Activation::kLinear, 1);
  net.weights()[0].At(0, 0) = std::nanf("");
  const auto y = net.Forward1({0.0f, 1.0f});
  EXPECT_TRUE(std::isnan(y[0]));
}

TEST(MlpTest, TapeOutputMatchesForward) {
  Mlp net({3, 8, 2}, Activation::kRelu, 5);
  Rng rng(11);
  Matrix x(4, 3);
  x.RandomGaussian(rng, 1.0);
  Matrix y;
  net.Forward(x, &y);
  Mlp::Tape tape;
  net.ForwardTape(x, &tape);
  const Matrix& taped = net.Output(tape);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(taped.data()[i], y.data()[i]);
  }
}

// The load-bearing test: backprop gradients must match finite differences.
class GradientCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(GradientCheck, BackwardMatchesFiniteDifferences) {
  const Activation act = GetParam();
  Mlp net({3, 6, 2}, act, 13);
  Rng rng(17);
  Matrix x(5, 3);
  x.RandomGaussian(rng, 1.0);
  Matrix target(5, 2);
  target.RandomGaussian(rng, 1.0);

  auto loss = [&]() {
    Matrix y;
    net.Forward(x, &y);
    double total = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      const double d = y.data()[i] - target.data()[i];
      total += d * d;
    }
    return total;
  };

  // Analytic gradients: dL/dy = 2(y - t).
  Mlp::Tape tape;
  net.ForwardTape(x, &tape);
  Matrix grad_out(5, 2);
  const Matrix& y = net.Output(tape);
  for (size_t i = 0; i < y.size(); ++i) {
    grad_out.data()[i] = 2.0f * (y.data()[i] - target.data()[i]);
  }
  Mlp::Gradients grads = net.MakeGradients();
  net.Backward(tape, grad_out, &grads);

  const float eps = 1e-3f;
  // Spot-check a spread of weights and every bias of each layer.
  for (int layer = 0; layer < net.num_layers(); ++layer) {
    Matrix& w = net.weights()[static_cast<size_t>(layer)];
    for (size_t i = 0; i < w.size(); i += 5) {
      const float orig = w.data()[i];
      w.data()[i] = orig + eps;
      const double up = loss();
      w.data()[i] = orig - eps;
      const double down = loss();
      w.data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grads.dw[static_cast<size_t>(layer)].data()[i], numeric,
                  2e-2 + 2e-2 * std::abs(numeric))
          << "layer " << layer << " w[" << i << "]";
    }
    auto& b = net.biases()[static_cast<size_t>(layer)];
    for (size_t i = 0; i < b.size(); ++i) {
      const float orig = b[i];
      b[i] = orig + eps;
      const double up = loss();
      b[i] = orig - eps;
      const double down = loss();
      b[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grads.db[static_cast<size_t>(layer)][i], numeric,
                  2e-2 + 2e-2 * std::abs(numeric))
          << "layer " << layer << " b[" << i << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, GradientCheck,
                         ::testing::Values(Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kLinear));

TEST(MlpTest, CopyParametersMakesNetworksIdentical) {
  Mlp a({4, 8, 2}, Activation::kRelu, 1);
  Mlp b({4, 8, 2}, Activation::kRelu, 2);
  b.CopyParametersFrom(a);
  const std::vector<float> x{0.3f, -0.2f, 0.8f, 0.0f};
  const auto ya = a.Forward1(x);
  const auto yb = b.Forward1(x);
  EXPECT_FLOAT_EQ(ya[0], yb[0]);
  EXPECT_FLOAT_EQ(ya[1], yb[1]);
}

TEST(MlpTest, SoftUpdateInterpolates) {
  Mlp a({2, 2}, Activation::kLinear, 1);
  Mlp b({2, 2}, Activation::kLinear, 2);
  a.weights()[0].At(0, 0) = 0.0f;
  b.weights()[0].At(0, 0) = 10.0f;
  a.SoftUpdateFrom(b, 0.1);
  EXPECT_NEAR(a.weights()[0].At(0, 0), 1.0f, 1e-6);
  a.SoftUpdateFrom(b, 1.0);
  EXPECT_NEAR(a.weights()[0].At(0, 0), 10.0f, 1e-6);
}

// --------------------------------------------------------- MaskedSoftmax --

TEST(FastTanhTest, MatchesStdTanhWithinDocumentedBound) {
  // The kTanh hidden activation runs FastTanh instead of libm; the header
  // documents < 4e-7 absolute error over the full range.
  float max_err = 0.0f;
  for (int i = -12000; i <= 12000; ++i) {
    const float x = static_cast<float>(i) * 1e-3f;
    max_err = std::max(max_err,
                       std::abs(FastTanh(x) - std::tanh(x)));
  }
  EXPECT_LT(max_err, 4e-7f);
}

TEST(FastTanhTest, ExactAtZeroAndSaturatesToOne) {
  EXPECT_EQ(FastTanh(0.0f), 0.0f);
  EXPECT_EQ(FastTanh(25.0f), 1.0f);
  EXPECT_EQ(FastTanh(-25.0f), -1.0f);
  EXPECT_EQ(FastTanh(std::numeric_limits<float>::infinity()), 1.0f);
  EXPECT_EQ(FastTanh(-std::numeric_limits<float>::infinity()), -1.0f);
}

TEST(FastTanhTest, PropagatesNan) {
  // A diverged pre-activation must stay visible to NaN screening; the
  // saturation clamp is written so NaN falls through it.
  EXPECT_TRUE(std::isnan(FastTanh(std::numeric_limits<float>::quiet_NaN())));
}

TEST(MaskedSoftmaxTest, NormalisesOverValidEntries) {
  std::vector<float> logits{1.0f, 2.0f, 3.0f};
  MaskedSoftmax({true, true, true}, &logits);
  float total = 0.0f;
  for (float v : logits) total += v;
  EXPECT_NEAR(total, 1.0f, 1e-6);
  EXPECT_GT(logits[2], logits[1]);
  EXPECT_GT(logits[1], logits[0]);
}

TEST(MaskedSoftmaxTest, MaskedEntriesGetZero) {
  std::vector<float> logits{5.0f, 100.0f, 5.0f};
  MaskedSoftmax({true, false, true}, &logits);
  EXPECT_FLOAT_EQ(logits[1], 0.0f);
  EXPECT_NEAR(logits[0], 0.5f, 1e-6);
  EXPECT_NEAR(logits[2], 0.5f, 1e-6);
}

TEST(MaskedSoftmaxTest, RawBufferOverloadMatchesVectorOverload) {
  std::vector<float> as_vector{1.5f, -0.5f, 3.0f, 0.0f};
  float raw[4] = {1.5f, -0.5f, 3.0f, 0.0f};
  const std::vector<bool> valid{true, false, true, true};
  MaskedSoftmax(valid, &as_vector);
  MaskedSoftmax(valid, raw, 4);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(raw[i], as_vector[i]);
}

TEST(MaskedSoftmaxTest, NumericallyStableWithHugeLogits) {
  std::vector<float> logits{1000.0f, 999.0f};
  MaskedSoftmax({true, true}, &logits);
  EXPECT_NEAR(logits[0] + logits[1], 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(logits[0]));
}

// ------------------------------------------------------------------ Adam --

TEST(AdamTest, MinimisesAQuadratic) {
  // Fit y = 2x with a linear 1->1 network from random init.
  Mlp net({1, 1}, Activation::kLinear, 3);
  Adam adam(&net, Adam::Options{.learning_rate = 0.05});
  Rng rng(4);
  for (int step = 0; step < 500; ++step) {
    Matrix x(8, 1), grad(8, 1);
    x.RandomGaussian(rng, 1.0);
    Mlp::Tape tape;
    net.ForwardTape(x, &tape);
    const Matrix& y = net.Output(tape);
    for (int i = 0; i < 8; ++i) {
      grad.At(i, 0) = 2.0f * (y.At(i, 0) - 2.0f * x.At(i, 0)) / 8.0f;
    }
    Mlp::Gradients grads = net.MakeGradients();
    net.Backward(tape, grad, &grads);
    adam.Step(grads);
  }
  EXPECT_NEAR(net.weights()[0].At(0, 0), 2.0f, 0.05);
  EXPECT_NEAR(net.biases()[0][0], 0.0f, 0.05);
}

TEST(AdamTest, GradNormAndClipping) {
  Mlp net({2, 1}, Activation::kLinear, 1);
  Mlp::Gradients grads = net.MakeGradients();
  grads.dw[0].At(0, 0) = 3.0f;
  grads.dw[0].At(1, 0) = 4.0f;
  EXPECT_NEAR(Adam::GradNorm(grads), 5.0, 1e-6);
}

TEST(AdamTest, StepCountsUpdates) {
  Mlp net({1, 1}, Activation::kLinear, 1);
  Adam adam(&net, Adam::Options{});
  Mlp::Gradients grads = net.MakeGradients();
  adam.Step(grads);
  adam.Step(grads);
  EXPECT_EQ(adam.steps(), 2);
}

}  // namespace
}  // namespace fairmove
