// Pins the Simulator::Step zero-allocation contract: once the arena, ring
// queues and reusable vectors are warm, a steady-state step must not touch
// the heap at all. The proof is a binary-wide counting hook on the global
// operator new — anything that allocates inside the measured window
// (std::deque churn, a per-slot std::vector, a logging string) fails the
// test with an exact count. The same hook pins the batched
// FeatureExtractor::ExtractAll path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#ifdef FAIRMOVE_ALLOC_TEST_BACKTRACE
#include <execinfo.h>
#include <unistd.h>
#endif

#include "fairmove/demand/demand_model.h"
#include "fairmove/geo/city_builder.h"
#include "fairmove/nn/matrix.h"
#include "fairmove/pricing/tou_tariff.h"
#include "fairmove/rl/features.h"
#include "fairmove/sim/simulator.h"

namespace {

std::atomic<int64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void CountAlloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
#ifdef FAIRMOVE_ALLOC_TEST_BACKTRACE
    void* frames[16];
    const int n = backtrace(frames, 16);
    backtrace_symbols_fd(frames, n, 2);
    write(2, "----\n", 5);
#endif
  }
}

}  // namespace

// Binary-wide replacement of the global allocation functions. All
// new-paths funnel through malloc so the matching deletes can always
// free(); the aligned forms over-align via std::aligned_alloc.
void* operator new(std::size_t size) {
  CountAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  CountAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t al) {
  CountAlloc();
  const std::size_t align = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fairmove {
namespace {

struct TestStack {
  std::unique_ptr<City> city;
  std::unique_ptr<DemandModel> demand;
  std::unique_ptr<Simulator> sim;
};

TestStack MakeStack(int num_taxis, uint64_t seed) {
  TestStack stack;
  CityConfig city_cfg = CityConfig{}.Scaled(0.05);
  city_cfg.seed = seed;
  auto city_or = CityBuilder(city_cfg).Build();
  EXPECT_TRUE(city_or.ok());
  stack.city = std::make_unique<City>(std::move(city_or).value());
  DemandConfig demand_cfg;
  demand_cfg.num_taxis = num_taxis;
  stack.demand = std::make_unique<DemandModel>(
      DemandModel::Create(stack.city.get(), demand_cfg).value());
  SimConfig sim_cfg;
  sim_cfg.num_taxis = num_taxis;
  sim_cfg.seed = seed;
  // Aggregate counters only: retaining every trip/charge record is
  // unbounded growth by design and out of scope for the hot-loop contract.
  sim_cfg.trace_level = TraceLevel::kAggregatesOnly;
  auto sim_or = Simulator::Create(stack.city.get(), stack.demand.get(),
                                  TouTariff::Shenzhen(), sim_cfg);
  EXPECT_TRUE(sim_or.ok());
  stack.sim = std::move(sim_or).value();
  return stack;
}

class ScopedAllocCounter {
 public:
  ScopedAllocCounter() {
    g_alloc_count.store(0);
    g_counting.store(true);
  }
  ~ScopedAllocCounter() { g_counting.store(false); }
  int64_t count() const { return g_alloc_count.load(); }
};

TEST(SimAllocTest, SteadyStateStepDoesZeroHeapAllocations) {
  TestStack stack = MakeStack(/*num_taxis=*/300, /*seed=*/77);
  // Warm-up: the first days take every container past its high-water mark
  // (morning demand peaks, charge queues, the step arena). Daily demand
  // draws differ, so a later day can still push a request ring past its
  // all-time high-water and trigger one doubling — that growth converges
  // geometrically, which is exactly what this loop asserts: within a few
  // days, a full simulated day must execute with ZERO heap allocations.
  // A genuine per-step allocation (a std::deque node, a per-slot vector)
  // never converges and fails the final expectation with its daily count.
  // The run is seed-deterministic, so the result is exact, not flaky.
  stack.sim->RunDays(/*policy=*/nullptr, 2);
  constexpr int kMaxWarmupDays = 8;
  int64_t last_day_count = -1;
  std::string per_day;
  for (int day = 0; day < kMaxWarmupDays; ++day) {
    ScopedAllocCounter counter;
    stack.sim->RunSlots(/*policy=*/nullptr, kSlotsPerDay);
    g_counting.store(false);
    last_day_count = counter.count();
    per_day += (day ? " " : "") + std::to_string(last_day_count);
    if (last_day_count == 0) break;
  }
  EXPECT_EQ(last_day_count, 0)
      << "Simulator::Step still allocated after " << kMaxWarmupDays
      << " warm days; per-day allocation counts: " << per_day;
}

TEST(SimAllocTest, WarmFeatureExtractionDoesZeroHeapAllocations) {
  TestStack stack = MakeStack(/*num_taxis=*/300, /*seed=*/77);
  stack.sim->RunDays(/*policy=*/nullptr, 1);
  FeatureExtractor extractor(stack.sim.get());

  std::vector<TaxiObs> obs;
  const FleetState& fleet = stack.sim->fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    TaxiObs o;
    o.taxi = id;
    o.region = fleet.region[static_cast<size_t>(id)];
    o.soc = fleet.soc[static_cast<size_t>(id)];
    obs.push_back(o);
  }
  Matrix features;
  extractor.ExtractAll(obs, &features);  // warm the template cache + matrix

  ScopedAllocCounter counter;
  extractor.ExtractAll(obs, &features);
  g_counting.store(false);
  EXPECT_EQ(counter.count(), 0)
      << "warm ExtractAll allocated on the batched path";
}

}  // namespace
}  // namespace fairmove
