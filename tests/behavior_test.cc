// Statistical behaviour properties of the calibrated fleet: the
// heterogeneity mechanisms (hustle lottery, driver skill) must produce the
// inequality patterns the paper observes, and the displacement levers must
// point the directions the evaluation relies on.

#include <gtest/gtest.h>

#include <algorithm>

#include "fairmove/core/fairmove.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

class BehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.06);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
    GtPolicy policy;
    system_->sim().RunDays(&policy, 2);
  }
  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(BehaviorTest, HighHustleDriversServeMoreTrips) {
  // The street-hailing lottery must favour high-hustle drivers — the
  // persistent, displacement-addressable inequality channel.
  const Simulator& sim = system_->sim();
  std::vector<TaxiId> ids(static_cast<size_t>(sim.num_taxis()));
  for (TaxiId i = 0; i < sim.num_taxis(); ++i) ids[static_cast<size_t>(i)] = i;
  std::sort(ids.begin(), ids.end(), [&](TaxiId a, TaxiId b) {
    return sim.hustle(a) < sim.hustle(b);
  });
  const size_t q = ids.size() / 4;
  double bottom_trips = 0.0, top_trips = 0.0;
  const FleetState& fleet = sim.fleet();
  for (size_t i = 0; i < q; ++i) {
    bottom_trips += fleet.cold[static_cast<size_t>(ids[i])].num_trips;
    top_trips +=
        fleet.cold[static_cast<size_t>(ids[ids.size() - 1 - i])].num_trips;
  }
  EXPECT_GT(top_trips, bottom_trips * 1.1)
      << "top-hustle quartile must out-serve the bottom quartile";
}

TEST_F(BehaviorTest, HustleTranslatesIntoProfitEfficiency) {
  const Simulator& sim = system_->sim();
  // Correlation sign between hustle and hourly PE.
  double mean_h = 0.0, mean_pe = 0.0;
  for (TaxiId i = 0; i < sim.num_taxis(); ++i) {
    mean_h += sim.hustle(i);
    mean_pe += sim.fleet().hourly_pe(i);
  }
  mean_h /= sim.num_taxis();
  mean_pe /= sim.num_taxis();
  double cov = 0.0;
  for (TaxiId i = 0; i < sim.num_taxis(); ++i) {
    cov += (sim.hustle(i) - mean_h) * (sim.fleet().hourly_pe(i) - mean_pe);
  }
  EXPECT_GT(cov, 0.0);
}

TEST_F(BehaviorTest, PeakHourSupplyShiftsIntoServing) {
  // Fleet composition must follow the demand diurnal: more taxis serving
  // in the evening rush than in the dead of night.
  const auto& snapshots = system_->sim().trace().phase_counts();
  ASSERT_FALSE(snapshots.empty());
  double night_serving = 0.0, rush_serving = 0.0;
  int night_n = 0, rush_n = 0;
  for (const PhaseCounts& counts : snapshots) {
    const int hour = TimeSlot(counts.slot).HourOfDay();
    if (hour >= 3 && hour < 5) {
      night_serving += counts.serving;
      ++night_n;
    } else if (hour >= 18 && hour < 20) {
      rush_serving += counts.serving;
      ++rush_n;
    }
  }
  ASSERT_GT(night_n, 0);
  ASSERT_GT(rush_n, 0);
  EXPECT_GT(rush_serving / rush_n, 2.0 * night_serving / night_n);
}

TEST_F(BehaviorTest, ChargingLoadConcentratesInPriceValleys) {
  const auto& snapshots = system_->sim().trace().phase_counts();
  double valley_charging = 0.0, peak_charging = 0.0;
  int valley_n = 0, peak_n = 0;
  for (const PhaseCounts& counts : snapshots) {
    const int hour = TimeSlot(counts.slot).HourOfDay();
    if (hour >= 3 && hour < 6) {
      valley_charging += counts.charging + counts.queuing;
      ++valley_n;
    } else if (hour >= 9 && hour < 11) {
      peak_charging += counts.charging + counts.queuing;
      ++peak_n;
    }
  }
  ASSERT_GT(valley_n, 0);
  ASSERT_GT(peak_n, 0);
  EXPECT_GT(valley_charging / valley_n, peak_charging / peak_n);
}

TEST_F(BehaviorTest, EnergyBookkeepingBalances) {
  // Energy charged + initial pack energy >= energy burned by driving
  // (equality up to the pack state at the end of the horizon).
  const Simulator& sim = system_->sim();
  const FleetState& fleet = sim.fleet();
  for (TaxiId i = 0; i < sim.num_taxis(); i += 17) {
    const TaxiCold& cold = fleet.cold[static_cast<size_t>(i)];
    const double burned =
        cold.km_driven * fleet.battery().consumption_kwh_per_km;
    const double initial_bound = fleet.battery().capacity_kwh;
    EXPECT_LE(burned, cold.kwh_charged + initial_bound + 1e-6)
        << "taxi " << i << " drove more than it ever had energy for";
  }
}

TEST_F(BehaviorTest, ChargeCostsMatchTariffBand) {
  const Simulator& sim = system_->sim();
  double kwh = 0.0, cost = 0.0;
  const FleetState& fleet = sim.fleet();
  for (TaxiId i = 0; i < sim.num_taxis(); ++i) {
    kwh += fleet.cold[static_cast<size_t>(i)].kwh_charged;
    cost += fleet.charge_cost_cny[static_cast<size_t>(i)];
  }
  ASSERT_GT(kwh, 0.0);
  const double mean_rate = cost / kwh;
  EXPECT_GE(mean_rate, kOffPeakRate - 1e-9);
  EXPECT_LE(mean_rate, kPeakRate + 1e-9);
  // Price-responsive drivers land well below an always-at-peak fleet
  // (forced charges still hit peak windows, so not below flat entirely).
  EXPECT_LT(mean_rate, 0.5 * (kFlatRate + kPeakRate));
}

}  // namespace
}  // namespace fairmove
