#include <gtest/gtest.h>

#include <cstdlib>

#include "fairmove/common/config.h"
#include "fairmove/common/status.h"
#include "fairmove/common/time_types.h"

namespace fairmove {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
}

// -------------------------------------------------------------- StatusOr --

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  EXPECT_EQ(ParsePositive(7).value_or(42), 7);
}

TEST(StatusOrTest, MoveOnlyTypesWork) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto f = [](int v) -> StatusOr<int> {
    FM_ASSIGN_OR_RETURN(int x, ParsePositive(v));
    return x * 2;
  };
  EXPECT_EQ(f(4).value(), 8);
  EXPECT_FALSE(f(-4).ok());
}

TEST(StatusOrTest, ReturnIfErrorMacro) {
  auto f = [](bool fail) -> Status {
    FM_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(f(false).ok());
  EXPECT_EQ(f(true).code(), StatusCode::kInternal);
}

// -------------------------------------------------------------- TimeSlot --

TEST(TimeSlotTest, Constants) {
  EXPECT_EQ(kSlotsPerDay, 144);
  EXPECT_EQ(kSlotsPerHour, 6);
  EXPECT_EQ(kMinutesPerSlot, 10);
}

TEST(TimeSlotTest, SlotOfDayWrapsAcrossDays) {
  EXPECT_EQ(TimeSlot(0).SlotOfDay(), 0);
  EXPECT_EQ(TimeSlot(143).SlotOfDay(), 143);
  EXPECT_EQ(TimeSlot(144).SlotOfDay(), 0);
  EXPECT_EQ(TimeSlot(150).SlotOfDay(), 6);
}

TEST(TimeSlotTest, HourOfDay) {
  EXPECT_EQ(TimeSlot(0).HourOfDay(), 0);
  EXPECT_EQ(TimeSlot(5).HourOfDay(), 0);
  EXPECT_EQ(TimeSlot(6).HourOfDay(), 1);
  EXPECT_EQ(TimeSlot(143).HourOfDay(), 23);
  EXPECT_EQ(TimeSlot(144 + 60).HourOfDay(), 10);
}

TEST(TimeSlotTest, DayNumber) {
  EXPECT_EQ(TimeSlot(0).Day(), 0);
  EXPECT_EQ(TimeSlot(143).Day(), 0);
  EXPECT_EQ(TimeSlot(144).Day(), 1);
  EXPECT_EQ(TimeSlot(287).Day(), 1);
}

TEST(TimeSlotTest, ArithmeticAndComparison) {
  const TimeSlot t(10);
  EXPECT_EQ((t + 5).index, 15);
  EXPECT_EQ(t.Next().index, 11);
  EXPECT_LT(t, t.Next());
  EXPECT_EQ(MinutesBetween(TimeSlot(3), TimeSlot(9)), 60);
  EXPECT_EQ(MinutesBetween(TimeSlot(9), TimeSlot(3)), -60);
}

TEST(TimeSlotTest, MinutesToSlotsCeil) {
  EXPECT_EQ(MinutesToSlotsCeil(0.0), 1);   // never less than one slot
  EXPECT_EQ(MinutesToSlotsCeil(0.1), 1);
  EXPECT_EQ(MinutesToSlotsCeil(10.0), 1);
  EXPECT_EQ(MinutesToSlotsCeil(10.1), 2);
  EXPECT_EQ(MinutesToSlotsCeil(25.0), 3);
}

TEST(TimeSlotTest, ToStringFormat) {
  EXPECT_EQ(TimeSlot(0).ToString(), "d0 00:00");
  EXPECT_EQ(TimeSlot(6 * 9 + 3).ToString(), "d0 09:30");
  EXPECT_EQ(TimeSlot(144 + 6).ToString(), "d1 01:00");
}

// ----------------------------------------------------------- Env parsing --

TEST(ParseTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-3").value(), -3.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(ParseTest, ParseInt) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("4.2").ok());
}

class EnvOverridesTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("FAIRMOVE_SCALE");
    unsetenv("FAIRMOVE_EPISODES");
    unsetenv("FAIRMOVE_SEED");
    unsetenv("FAIRMOVE_DAYS");
    unsetenv("FAIRMOVE_THREADS");
    unsetenv("FAIRMOVE_TELEMETRY");
    unsetenv("FAIRMOVE_PROFILE");
  }
};

TEST_F(EnvOverridesTest, UnsetVariablesKeepDefaults) {
  EnvOverrides env;
  env.scale = 0.5;
  env.episodes = 3;
  ASSERT_TRUE(env.LoadFromEnv().ok());
  EXPECT_DOUBLE_EQ(env.scale, 0.5);
  EXPECT_EQ(env.episodes, 3);
}

TEST_F(EnvOverridesTest, ReadsAllVariables) {
  setenv("FAIRMOVE_SCALE", "0.25", 1);
  setenv("FAIRMOVE_EPISODES", "9", 1);
  setenv("FAIRMOVE_SEED", "123", 1);
  setenv("FAIRMOVE_DAYS", "4", 1);
  EnvOverrides env;
  ASSERT_TRUE(env.LoadFromEnv().ok());
  EXPECT_DOUBLE_EQ(env.scale, 0.25);
  EXPECT_EQ(env.episodes, 9);
  EXPECT_EQ(env.seed, 123u);
  EXPECT_EQ(env.days, 4);
}

TEST_F(EnvOverridesTest, RejectsMalformedValues) {
  setenv("FAIRMOVE_SCALE", "yes", 1);
  EnvOverrides env;
  EXPECT_FALSE(env.LoadFromEnv().ok());
}

TEST_F(EnvOverridesTest, RejectsOutOfRangeScale) {
  setenv("FAIRMOVE_SCALE", "1.5", 1);
  EnvOverrides env;
  EXPECT_FALSE(env.LoadFromEnv().ok());
  setenv("FAIRMOVE_SCALE", "0", 1);
  EXPECT_FALSE(env.LoadFromEnv().ok());
}

TEST_F(EnvOverridesTest, RejectsNegativeEpisodesOrDays) {
  setenv("FAIRMOVE_EPISODES", "-1", 1);
  EnvOverrides env;
  EXPECT_FALSE(env.LoadFromEnv().ok());
  unsetenv("FAIRMOVE_EPISODES");
  setenv("FAIRMOVE_DAYS", "0", 1);
  EXPECT_FALSE(env.LoadFromEnv().ok());
}

TEST_F(EnvOverridesTest, RejectsNegativeSeed) {
  setenv("FAIRMOVE_SEED", "-5", 1);
  EnvOverrides env;
  const Status s = env.LoadFromEnv();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("FAIRMOVE_SEED"), std::string::npos);
}

TEST_F(EnvOverridesTest, RejectsOutOfRangeThreads) {
  EnvOverrides env;
  setenv("FAIRMOVE_THREADS", "0", 1);
  EXPECT_FALSE(env.LoadFromEnv().ok());
  setenv("FAIRMOVE_THREADS", "5000", 1);
  EXPECT_FALSE(env.LoadFromEnv().ok());
  setenv("FAIRMOVE_THREADS", "many", 1);
  EXPECT_FALSE(env.LoadFromEnv().ok());
  setenv("FAIRMOVE_THREADS", "8", 1);
  ASSERT_TRUE(env.LoadFromEnv().ok());
  EXPECT_EQ(env.threads, 8);
}

TEST_F(EnvOverridesTest, RejectsEmptyTelemetryDir) {
  setenv("FAIRMOVE_TELEMETRY", "", 1);
  EnvOverrides env;
  const Status s = env.LoadFromEnv();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("FAIRMOVE_TELEMETRY"), std::string::npos);
  setenv("FAIRMOVE_TELEMETRY", "/tmp/fairmove-telemetry", 1);
  ASSERT_TRUE(env.LoadFromEnv().ok());
  EXPECT_EQ(env.telemetry_dir, "/tmp/fairmove-telemetry");
}

TEST_F(EnvOverridesTest, ProfileMustBeZeroOrOne) {
  EnvOverrides env;
  setenv("FAIRMOVE_PROFILE", "yes", 1);
  EXPECT_FALSE(env.LoadFromEnv().ok());
  setenv("FAIRMOVE_PROFILE", "2", 1);
  EXPECT_FALSE(env.LoadFromEnv().ok());
  setenv("FAIRMOVE_PROFILE", "1", 1);
  ASSERT_TRUE(env.LoadFromEnv().ok());
  EXPECT_TRUE(env.profile);
  setenv("FAIRMOVE_PROFILE", "0", 1);
  ASSERT_TRUE(env.LoadFromEnv().ok());
  EXPECT_FALSE(env.profile);
}

}  // namespace
}  // namespace fairmove
