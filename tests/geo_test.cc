#include <gtest/gtest.h>

#include <set>

#include "fairmove/geo/city.h"
#include "fairmove/geo/city_builder.h"
#include "fairmove/geo/point.h"

namespace fairmove {
namespace {

// ----------------------------------------------------------------- Point --

TEST(PointTest, PlanarDistance) {
  EXPECT_DOUBLE_EQ(DistanceKm({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceKm({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, HaversineKnownDistance) {
  // Shenzhen <-> Guangzhou is roughly 105 km.
  const LatLng shenzhen{22.54, 114.06};
  const LatLng guangzhou{23.13, 113.26};
  const double d = HaversineKm(shenzhen, guangzhou);
  EXPECT_GT(d, 95.0);
  EXPECT_LT(d, 115.0);
}

TEST(PointTest, HaversineZeroForSamePoint) {
  const LatLng p{22.5, 114.0};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(PointTest, PlanarToLatLngRoundTripsDistance) {
  const PointKm a{5.0, 5.0};
  const PointKm b{15.0, 5.0};  // 10 km east
  const double d = HaversineKm(PlanarToLatLng(a), PlanarToLatLng(b));
  EXPECT_NEAR(d, 10.0, 0.05);
}

TEST(RegionTest, ClassNames) {
  EXPECT_STREQ(RegionClassName(RegionClass::kDowntownCore), "downtown");
  EXPECT_STREQ(RegionClassName(RegionClass::kAirport), "airport");
  EXPECT_STREQ(RegionClassName(RegionClass::kSuburb), "suburb");
}

// ----------------------------------------------------------- CityBuilder --

TEST(CityBuilderTest, RejectsBadConfigs) {
  CityConfig cfg;
  cfg.num_regions = 2;
  EXPECT_FALSE(CityBuilder(cfg).Build().ok());
  cfg = CityConfig();
  cfg.num_stations = 0;
  EXPECT_FALSE(CityBuilder(cfg).Build().ok());
  cfg = CityConfig();
  cfg.total_charge_points = 10;  // < num_stations (123)
  EXPECT_FALSE(CityBuilder(cfg).Build().ok());
  cfg = CityConfig();
  cfg.centroid_jitter = 0.6;
  EXPECT_FALSE(CityBuilder(cfg).Build().ok());
  cfg = CityConfig();
  cfg.aspect_ratio = -1;
  EXPECT_FALSE(CityBuilder(cfg).Build().ok());
}

TEST(CityBuilderTest, FullShenzhenDimensions) {
  auto city_or = CityBuilder(CityConfig{}).Build();
  ASSERT_TRUE(city_or.ok());
  const City& city = city_or.value();
  EXPECT_EQ(city.num_regions(), 491);
  EXPECT_EQ(city.num_stations(), 123);
  EXPECT_EQ(city.total_charge_points(), 5000);
}

TEST(CityBuilderTest, DeterministicForFixedSeed) {
  CityConfig cfg = CityConfig{}.Scaled(0.1);
  auto a = CityBuilder(cfg).Build();
  auto b = CityBuilder(cfg).Build();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_regions(), b->num_regions());
  for (int r = 0; r < a->num_regions(); ++r) {
    EXPECT_EQ(a->region(r).centroid_km, b->region(r).centroid_km);
    EXPECT_EQ(a->region(r).cls, b->region(r).cls);
  }
}

TEST(CityBuilderTest, ScaledPreservesStructure) {
  const CityConfig scaled = CityConfig{}.Scaled(0.25);
  EXPECT_LT(scaled.num_regions, 491);
  EXPECT_GE(scaled.num_regions, 12);
  EXPECT_LT(scaled.num_stations, 123);
  EXPECT_GE(scaled.total_charge_points, scaled.num_stations);
}

class BuiltCityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto city_or = CityBuilder(CityConfig{}.Scaled(0.15)).Build();
    ASSERT_TRUE(city_or.ok());
    city_ = std::make_unique<City>(std::move(city_or).value());
  }
  std::unique_ptr<City> city_;
};

TEST_F(BuiltCityTest, HasExactlyOneAirportAndOnePort) {
  int airports = 0, ports = 0, downtown = 0;
  for (const Region& r : city_->regions()) {
    airports += r.cls == RegionClass::kAirport ? 1 : 0;
    ports += r.cls == RegionClass::kPort ? 1 : 0;
    downtown += r.cls == RegionClass::kDowntownCore ? 1 : 0;
  }
  EXPECT_EQ(airports, 1);
  EXPECT_EQ(ports, 1);
  EXPECT_GT(downtown, 0);
}

TEST_F(BuiltCityTest, AdjacencyIsSymmetricAndIrreflexive) {
  for (const Region& r : city_->regions()) {
    EXPECT_FALSE(r.neighbors.empty());
    for (RegionId n : r.neighbors) {
      EXPECT_NE(n, r.id);
      const auto& back = city_->region(n).neighbors;
      EXPECT_NE(std::find(back.begin(), back.end(), r.id), back.end())
          << "edge " << r.id << "->" << n << " not symmetric";
    }
  }
}

TEST_F(BuiltCityTest, NeighborsAreUnique) {
  for (const Region& r : city_->regions()) {
    std::set<RegionId> unique(r.neighbors.begin(), r.neighbors.end());
    EXPECT_EQ(unique.size(), r.neighbors.size());
  }
}

TEST_F(BuiltCityTest, TravelMatrixBasics) {
  const int n = city_->num_regions();
  for (RegionId a = 0; a < n; a += 7) {
    EXPECT_DOUBLE_EQ(city_->TravelMinutes(a, a), 0.0);
    EXPECT_DOUBLE_EQ(city_->DrivingKm(a, a), 0.0);
    for (RegionId b = 0; b < n; b += 11) {
      EXPECT_GE(city_->TravelMinutes(a, b), 0.0);
      if (a != b) {
        EXPECT_GT(city_->TravelMinutes(a, b), 0.0);
        EXPECT_GT(city_->DrivingKm(a, b), 0.0);
      }
    }
  }
}

TEST_F(BuiltCityTest, TriangleInequalityHolds) {
  // Shortest paths must satisfy d(a,c) <= d(a,b) + d(b,c).
  const int n = city_->num_regions();
  for (RegionId a = 0; a < n; a += 13) {
    for (RegionId b = 0; b < n; b += 17) {
      for (RegionId c = 0; c < n; c += 19) {
        EXPECT_LE(city_->TravelMinutes(a, c),
                  city_->TravelMinutes(a, b) + city_->TravelMinutes(b, c) +
                      1e-3);
      }
    }
  }
}

TEST_F(BuiltCityTest, NearestStationsSortedByTravelTime) {
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    const auto& stations = city_->NearestStations(r);
    EXPECT_LE(stations.size(), static_cast<size_t>(City::kNearestStations));
    EXPECT_FALSE(stations.empty());
    for (size_t i = 1; i < stations.size(); ++i) {
      EXPECT_LE(city_->TravelMinutesToStation(r, stations[i - 1]),
                city_->TravelMinutesToStation(r, stations[i]));
    }
  }
}

TEST_F(BuiltCityTest, StationsInRegionConsistentWithStationList) {
  int total = 0;
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    for (StationId s : city_->StationsInRegion(r)) {
      EXPECT_EQ(city_->station(s).region, r);
      ++total;
    }
  }
  EXPECT_EQ(total, city_->num_stations());
}

TEST_F(BuiltCityTest, StepTowardReducesDistance) {
  const RegionId from = 0;
  const RegionId to = city_->num_regions() - 1;
  RegionId cur = from;
  int hops = 0;
  while (cur != to && hops < city_->num_regions()) {
    const RegionId next = city_->StepToward(cur, to);
    EXPECT_NE(next, cur) << "stuck at " << cur;
    EXPECT_LT(city_->TravelMinutes(next, to), city_->TravelMinutes(cur, to));
    cur = next;
    ++hops;
  }
  EXPECT_EQ(cur, to);
}

TEST_F(BuiltCityTest, StepTowardSelfIsSelf) {
  EXPECT_EQ(city_->StepToward(3, 3), 3);
}

TEST_F(BuiltCityTest, ClassSpeedsAreSane) {
  EXPECT_LT(City::ClassSpeedKmh(RegionClass::kDowntownCore),
            City::ClassSpeedKmh(RegionClass::kSuburb));
  for (int c = 0; c < kNumRegionClasses; ++c) {
    const double v = City::ClassSpeedKmh(static_cast<RegionClass>(c));
    EXPECT_GT(v, 5.0);
    EXPECT_LT(v, 90.0);
  }
}

// Parameterized: structural invariants hold across scales and seeds.
class CityScaleSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(CityScaleSweep, InvariantsAcrossScalesAndSeeds) {
  CityConfig cfg = CityConfig{}.Scaled(std::get<0>(GetParam()));
  cfg.seed = std::get<1>(GetParam());
  auto city_or = CityBuilder(cfg).Build();
  ASSERT_TRUE(city_or.ok());
  const City& city = city_or.value();
  EXPECT_EQ(city.num_regions(), cfg.num_regions);
  EXPECT_EQ(city.num_stations(), cfg.num_stations);
  EXPECT_EQ(city.total_charge_points(), cfg.total_charge_points);
  // Connectivity: every region can reach region 0.
  for (RegionId r = 0; r < city.num_regions(); ++r) {
    EXPECT_LT(city.TravelMinutes(r, 0), 1e6);
  }
  EXPECT_GE(city.max_neighbors(), 3);
  EXPECT_LE(city.max_neighbors(), 8);
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndSeeds, CityScaleSweep,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.3, 1.0),
                       ::testing::Values(1u, 20130u)));

}  // namespace
}  // namespace fairmove
