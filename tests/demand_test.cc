#include <gtest/gtest.h>

#include <memory>

#include "fairmove/demand/demand_model.h"
#include "fairmove/demand/demand_predictor.h"
#include "fairmove/geo/city_builder.h"

namespace fairmove {
namespace {

class DemandModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto city_or = CityBuilder(CityConfig{}.Scaled(0.1)).Build();
    ASSERT_TRUE(city_or.ok());
    city_ = std::make_unique<City>(std::move(city_or).value());
    DemandConfig cfg;
    cfg.num_taxis = 1000;
    auto model_or = DemandModel::Create(city_.get(), cfg);
    ASSERT_TRUE(model_or.ok());
    model_ = std::make_unique<DemandModel>(std::move(model_or).value());
  }

  std::unique_ptr<City> city_;
  std::unique_ptr<DemandModel> model_;
};

TEST_F(DemandModelTest, CreateRejectsBadConfigs) {
  DemandConfig cfg;
  EXPECT_FALSE(DemandModel::Create(nullptr, cfg).ok());
  cfg.trips_per_taxi_per_day = 0.0;
  EXPECT_FALSE(DemandModel::Create(city_.get(), cfg).ok());
  cfg = DemandConfig{};
  cfg.num_taxis = 0;
  EXPECT_FALSE(DemandModel::Create(city_.get(), cfg).ok());
  cfg = DemandConfig{};
  cfg.gravity_scale_km = 0.0;
  EXPECT_FALSE(DemandModel::Create(city_.get(), cfg).ok());
  cfg = DemandConfig{};
  cfg.intra_region_km = -1.0;
  EXPECT_FALSE(DemandModel::Create(city_.get(), cfg).ok());
}

TEST_F(DemandModelTest, TotalVolumeMatchesTarget) {
  double total = 0.0;
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    for (int s = 0; s < kSlotsPerDay; ++s) {
      total += model_->Rate(r, TimeSlot(s));
    }
  }
  const double target =
      model_->config().trips_per_taxi_per_day * model_->config().num_taxis;
  EXPECT_NEAR(total, target, target * 1e-3);
  EXPECT_NEAR(model_->TotalTripsPerDay(), target, 1e-6);
}

TEST_F(DemandModelTest, RatesNonNegativeEverywhere) {
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    for (int s = 0; s < kSlotsPerDay; ++s) {
      EXPECT_GE(model_->Rate(r, TimeSlot(s)), 0.0);
    }
  }
}

TEST_F(DemandModelTest, DowntownBeatsSuburbAtRushHour) {
  double downtown_rate = 0.0, suburb_rate = 0.0;
  int downtown_count = 0, suburb_count = 0;
  const TimeSlot rush(8 * kSlotsPerHour);
  for (const Region& region : city_->regions()) {
    if (region.cls == RegionClass::kDowntownCore) {
      downtown_rate += model_->Rate(region.id, rush);
      ++downtown_count;
    } else if (region.cls == RegionClass::kSuburb) {
      suburb_rate += model_->Rate(region.id, rush);
      ++suburb_count;
    }
  }
  ASSERT_GT(downtown_count, 0);
  ASSERT_GT(suburb_count, 0);
  EXPECT_GT(downtown_rate / downtown_count,
            5.0 * suburb_rate / suburb_count);
}

TEST_F(DemandModelTest, NightDemandLowerThanRushDemand) {
  double night = 0.0, rush = 0.0;
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    night += model_->Rate(r, TimeSlot(3 * kSlotsPerHour));
    rush += model_->Rate(r, TimeSlot(8 * kSlotsPerHour));
  }
  EXPECT_GT(rush, 2.0 * night);
}

TEST_F(DemandModelTest, RatesRepeatDaily) {
  for (RegionId r = 0; r < city_->num_regions(); r += 5) {
    for (int s = 0; s < kSlotsPerDay; s += 13) {
      EXPECT_DOUBLE_EQ(model_->Rate(r, TimeSlot(s)),
                       model_->Rate(r, TimeSlot(s + kSlotsPerDay)));
    }
  }
}

TEST_F(DemandModelTest, SampleCountIsPoissonLike) {
  Rng rng(5);
  // Pick the busiest region at rush hour.
  RegionId busiest = 0;
  const TimeSlot rush(8 * kSlotsPerHour);
  for (RegionId r = 1; r < city_->num_regions(); ++r) {
    if (model_->Rate(r, rush) > model_->Rate(busiest, rush)) busiest = r;
  }
  const double rate = model_->Rate(busiest, rush);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += model_->SampleCount(busiest, rush, rng);
  EXPECT_NEAR(sum / n, rate, rate * 0.1 + 0.1);
}

TEST_F(DemandModelTest, DestinationsAreValidRegions) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const RegionId origin =
        static_cast<RegionId>(rng.NextBounded(city_->num_regions()));
    const RegionId dest =
        model_->SampleDestination(origin, TimeSlot(i % kSlotsPerDay), rng);
    EXPECT_GE(dest, 0);
    EXPECT_LT(dest, city_->num_regions());
  }
}

TEST_F(DemandModelTest, DestinationsFavorNearbyRegions) {
  // Gravity decay: the mean sampled trip distance should be well below the
  // mean distance to a uniformly random region.
  Rng rng(7);
  const RegionId origin = 0;
  const TimeSlot noon(12 * kSlotsPerHour);
  double sampled_km = 0.0, uniform_km = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    sampled_km += model_->TripKm(
        origin, model_->SampleDestination(origin, noon, rng));
    uniform_km += model_->TripKm(
        origin, static_cast<RegionId>(rng.NextBounded(city_->num_regions())));
  }
  EXPECT_LT(sampled_km, 0.8 * uniform_km);
}

TEST_F(DemandModelTest, TripKmIntraRegionUsesConfig) {
  EXPECT_DOUBLE_EQ(model_->TripKm(3, 3), model_->config().intra_region_km);
  EXPECT_GT(model_->TripKm(0, city_->num_regions() - 1), 0.0);
}

TEST_F(DemandModelTest, DiurnalAndAttractivenessWeightsPositive) {
  for (int c = 0; c < kNumRegionClasses; ++c) {
    for (int h = 0; h < kHoursPerDay; ++h) {
      EXPECT_GT(DemandModel::DiurnalWeight(static_cast<RegionClass>(c), h),
                0.0);
      EXPECT_GT(
          DemandModel::AttractivenessWeight(static_cast<RegionClass>(c), h),
          0.0);
    }
  }
}

TEST_F(DemandModelTest, MorningAttractsDowntownEveningAttractsResidential) {
  EXPECT_GT(
      DemandModel::AttractivenessWeight(RegionClass::kDowntownCore, 8),
      DemandModel::AttractivenessWeight(RegionClass::kDowntownCore, 18));
  EXPECT_LT(DemandModel::AttractivenessWeight(RegionClass::kSuburb, 8),
            DemandModel::AttractivenessWeight(RegionClass::kSuburb, 18));
}

// -------------------------------------------------------- DemandPredictor --

TEST(DemandPredictorTest, PrimedPredictorReturnsModelRates) {
  auto city_or = CityBuilder(CityConfig{}.Scaled(0.06)).Build();
  ASSERT_TRUE(city_or.ok());
  City city = std::move(city_or).value();
  DemandConfig cfg;
  cfg.num_taxis = 500;
  auto model = DemandModel::Create(&city, cfg).value();
  DemandPredictor predictor(city.num_regions());
  predictor.PrimeFromModel(model);
  for (RegionId r = 0; r < city.num_regions(); r += 3) {
    const TimeSlot t(40);
    EXPECT_NEAR(predictor.Predict(r, t), model.Rate(r, t), 1e-9);
  }
}

TEST(DemandPredictorTest, ObservationsMoveTheEwma) {
  DemandPredictor predictor(4, /*history_weight=*/0.5);
  const TimeSlot t(10);
  EXPECT_DOUBLE_EQ(predictor.Predict(0, t), 0.0);
  predictor.Observe(0, t, 8.0);
  // 0.5 * 0 + 0.5 * 8 = 4 historical; the fresh same-slot observation does
  // not blend for a same-slot query (realtime applies to slot+1 queries).
  const double p = predictor.Predict(0, TimeSlot(10 + kSlotsPerDay));
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 8.0);
}

TEST(DemandPredictorTest, RealtimeBlendOnNextSlot) {
  DemandPredictor predictor(2, 0.9, /*realtime_blend=*/1.0);
  predictor.Observe(1, TimeSlot(5), 10.0);
  // Query for slot 6: the realtime component (weight 1) dominates.
  EXPECT_DOUBLE_EQ(predictor.Predict(1, TimeSlot(6)), 10.0);
  // Stale queries ignore the realtime component.
  EXPECT_LT(predictor.Predict(1, TimeSlot(9)), 10.0);
}

TEST(DemandPredictorTest, LearnsPeriodicPatternFromObservations) {
  DemandPredictor predictor(1, 0.7, 0.0);
  // Feed 30 days of: 6 at slot 12, 1 at slot 100.
  for (int day = 0; day < 30; ++day) {
    predictor.Observe(0, TimeSlot(day * kSlotsPerDay + 12), 6.0);
    predictor.Observe(0, TimeSlot(day * kSlotsPerDay + 100), 1.0);
  }
  EXPECT_NEAR(predictor.Predict(0, TimeSlot(12)), 6.0, 0.2);
  EXPECT_NEAR(predictor.Predict(0, TimeSlot(100)), 1.0, 0.2);
}

}  // namespace
}  // namespace fairmove
