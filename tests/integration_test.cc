// End-to-end integration tests: the whole stack (city -> demand -> sim ->
// training -> evaluation -> metrics), with assertions on the *qualitative*
// reproduction targets that are stable at small scale.

#include <gtest/gtest.h>

#include "fairmove/core/fairmove.h"
#include "fairmove/data/analysis.h"
#include "fairmove/rl/cma2c_policy.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

FairMoveConfig SmallConfig() {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  cfg.trainer.episodes = 2;
  cfg.eval.days = 1;
  return cfg;
}

TEST(IntegrationTest, GroundTruthReproducesSectionIIFindings) {
  auto system = std::move(FairMoveSystem::Create(SmallConfig())).value();
  GtPolicy policy;
  system->sim().RunDays(&policy, 2);
  const FleetMetrics m = ComputeFleetMetrics(system->sim());

  // Finding (i) / Fig 3: charging takes 45-120 min for most sessions —
  // nothing like a 3-5 minute refuel.
  ASSERT_FALSE(m.charge_duration_min.empty());
  EXPECT_GT(m.charge_duration_min.FractionIn(45.0, 120.0), 0.5);
  EXPECT_GT(m.charge_duration_min.Median(), 40.0);

  // Finding (ii) / Fig 4: charging concentrates in the TOU price valleys.
  const auto shares = ChargeStartShareByHour(system->sim());
  double valley = 0.0, business_peak = 0.0;
  for (int h : {2, 3, 4, 5, 12, 13, 17}) valley += shares[h];
  for (int h : {8, 9, 10, 11, 14, 15, 16}) business_peak += shares[h];
  EXPECT_GT(valley, business_peak);

  // Finding (iii) / Fig 5: first cruise after charging has a wide spread —
  // a meaningful share finds passengers quickly, a tail does not.
  ASSERT_GT(m.first_cruise_min.size(), 20u);
  EXPECT_GT(m.first_cruise_min.CdfAt(10.0), 0.15);
  EXPECT_LT(m.first_cruise_min.CdfAt(10.0), 0.8);

  // Finding (v) / Fig 8: persistent PE inequality across drivers.
  EXPECT_GT(PeP80OverP20Gap(system->sim()), 0.08);

  // Headline calibration: GT hourly PE in the paper's ballpark.
  EXPECT_GT(m.pe.Median(), 30.0);
  EXPECT_LT(m.pe.Median(), 60.0);
}

TEST(IntegrationTest, ChargingStationsSeeQueues) {
  auto system = std::move(FairMoveSystem::Create(SmallConfig())).value();
  GtPolicy policy;
  system->sim().RunDays(&policy, 1);
  const FleetMetrics m = ComputeFleetMetrics(system->sim());
  ASSERT_FALSE(m.charge_idle_min.empty());
  // Some sessions wait (queues exist)...
  EXPECT_GT(m.charge_idle_min.Percentile(90), 10.0);
  // ...but balking keeps the tail civilised.
  EXPECT_LT(m.charge_idle_min.Percentile(90), 400.0);
}

TEST(IntegrationTest, FullComparisonPipelineRuns) {
  auto system = std::move(FairMoveSystem::Create(SmallConfig())).value();
  const auto results = system->RunComparison(
      {PolicyKind::kSd2, PolicyKind::kFairMove});
  ASSERT_EQ(results.size(), 3u);
  const MethodResult& gt = results[0];
  const MethodResult& sd2 = results[1];
  const MethodResult& fairmove = results[2];
  EXPECT_GT(gt.metrics.trips, 0);
  EXPECT_GT(sd2.metrics.trips, 0);
  EXPECT_GT(fairmove.metrics.trips, 0);
  // Structural finding of the paper (Fig 16): the purely competitive
  // greedy baseline concentrates earnings (herding + winner-takes-all),
  // so the fairness-aware learned policy always ends up with the lower PE
  // variance. This holds even for a barely trained FairMove.
  EXPECT_LT(fairmove.metrics.pf, sd2.metrics.pf);
  EXPECT_GT(fairmove.vs_gt.pipf, sd2.vs_gt.pipf);
}

TEST(IntegrationTest, TrainingImprovesCma2cReward) {
  FairMoveConfig cfg = SmallConfig();
  cfg.trainer.episodes = 6;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Cma2cPolicy::Options options;
  options.seed = 7055;
  Cma2cPolicy policy(system->sim(), options);
  Trainer trainer = system->MakeTrainer();
  const auto stats = trainer.Train(&policy);
  ASSERT_EQ(stats.size(), 6u);
  // Mean reward of the last two episodes beats the first episode: the
  // policy is learning, not flat-lining.
  const double early = stats[0].avg_reward;
  const double late =
      0.5 * (stats[4].avg_reward + stats[5].avg_reward);
  EXPECT_GT(late, early - 0.05);
}

TEST(IntegrationTest, AlphaOneIgnoresFairnessAlphaZeroIgnoresProfit) {
  // The Eq-5 boundary cases produce different training rewards.
  FairMoveConfig cfg = SmallConfig();
  cfg.trainer.episodes = 1;
  cfg.trainer.reward.alpha = 1.0;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy gt_a, gt_b;
  Trainer t1 = system->MakeTrainer();
  const auto profit_only = t1.RunEvaluationEpisode(&gt_a, 5, 144);

  cfg.trainer.reward.alpha = 0.0;
  auto system2 = std::move(FairMoveSystem::Create(cfg)).value();
  Trainer t2 = system2->MakeTrainer();
  const auto fairness_only = t2.RunEvaluationEpisode(&gt_b, 5, 144);

  // alpha=1: reward ~ profit (positive on average).
  EXPECT_GT(profit_only.avg_reward, 0.0);
  // alpha=0: reward is a pure penalty (non-positive).
  EXPECT_LE(fairness_only.avg_reward, 1e-9);
}

TEST(IntegrationTest, FullScaleCitySmokeTest) {
  // The paper's full 491-region / 123-station / 20,130-taxi instance must
  // construct and run a few slots (memory + wiring check).
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen();
  cfg.sim.trace_level = TraceLevel::kAggregatesOnly;
  auto system_or = FairMoveSystem::Create(cfg);
  ASSERT_TRUE(system_or.ok());
  auto& system = *system_or.value();
  EXPECT_EQ(system.city().num_regions(), 491);
  EXPECT_EQ(system.city().num_stations(), 123);
  EXPECT_EQ(system.sim().num_taxis(), 20130);
  GtPolicy policy;
  system.sim().RunSlots(&policy, 12);  // two hours
  EXPECT_GT(system.sim().trace().total_trips(), 1000);
}

}  // namespace
}  // namespace fairmove
