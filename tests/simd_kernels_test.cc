// Kernel-equivalence suite for the explicit SIMD paths in nn/ (simd.h).
// The library's documented contract is that SIMD changes throughput, never
// bits: every output element accumulates its k contributions in ascending-p
// order, one unfused IEEE op per contribution, and NaN/Inf propagate
// exactly as in the scalar loops. Each test compares the shipped kernels
// bit-for-bit (memcmp of float bits, so -0.0f vs 0.0f and differing NaN
// payloads fail) against a naive scalar triple loop written here, across
// shapes chosen to exercise every code path: p-remainders (k % 4 != 0),
// j-lane tails (n % lane width != 0), the kColBlock=256 column tiling
// (n > 256), and non-finite inputs. The threaded tests pin the same
// property through Mlp::Forward at 1 and 4 threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "fairmove/common/parallel.h"
#include "fairmove/nn/matrix.h"
#include "fairmove/nn/mlp.h"
#include "fairmove/nn/simd.h"

namespace fairmove {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

bool BitEqual(float x, float y) {
  uint32_t xb, yb;
  std::memcpy(&xb, &x, 4);
  std::memcpy(&yb, &y, 4);
  return xb == yb;
}

void ExpectBitEqual(const Matrix& got, const Matrix& want,
                    const char* label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (int i = 0; i < got.rows(); ++i) {
    for (int j = 0; j < got.cols(); ++j) {
      ASSERT_TRUE(BitEqual(got.At(i, j), want.At(i, j)))
          << label << " mismatch at (" << i << ", " << j
          << "): " << got.At(i, j) << " vs " << want.At(i, j);
    }
  }
}

/// Deterministic fill mixing magnitudes and signs (plus exact zeros, which
/// matter for the no-zero-skip x NaN contract).
void Fill(Matrix* m, uint64_t salt) {
  uint64_t state = 0x9E3779B97F4A7C15ULL ^ salt;
  for (size_t i = 0; i < m->size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const int bucket = static_cast<int>(state >> 61);
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0;  // [0, 1)
    float v;
    if (bucket == 0) {
      v = 0.0f;
    } else if (bucket == 1) {
      v = static_cast<float>((u - 0.5) * 1e-6);
    } else if (bucket == 2) {
      v = static_cast<float>((u - 0.5) * 1e6);
    } else {
      v = static_cast<float>(u * 4.0 - 2.0);
    }
    m->data()[i] = v;
  }
}

// --- Naive ascending-p references (the documented element order) ---------

void RefMatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Resize(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int p = 0; p < a.cols(); ++p) acc += a.At(i, p) * b.At(p, j);
      out->Row(i)[j] = acc;
    }
  }
}

void RefMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Resize(a.cols(), b.cols());
  for (int i = 0; i < a.cols(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int p = 0; p < a.rows(); ++p) acc += a.At(p, i) * b.At(p, j);
      out->Row(i)[j] = acc;
    }
  }
}

void RefMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Resize(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (int p = 0; p < a.cols(); ++p) acc += a.At(i, p) * b.At(j, p);
      out->Row(i)[j] = acc;
    }
  }
}

struct Shape {
  int m, k, n;
};

/// Shapes covering: lane tails (n % 4 and n % 8 nonzero), p-remainders
/// (k % 4 != 0), single rows/columns, and the kColBlock=256 column tile
/// boundary (n = 256, 257, 300).
const Shape kShapes[] = {
    {1, 1, 1},   {1, 4, 8},    {3, 7, 5},    {5, 13, 65}, {2, 5, 3},
    {4, 16, 32}, {3, 9, 256},  {2, 11, 257}, {2, 6, 300}, {7, 31, 33},
};

TEST(SimdKernelEquivalence, MatMulMatchesNaiveReferenceBitForBit) {
  for (const Shape& s : kShapes) {
    Matrix a(s.m, s.k), b(s.k, s.n);
    Fill(&a, 1);
    Fill(&b, 2);
    Matrix got, want;
    MatMul(a, b, &got);
    RefMatMul(a, b, &want);
    ExpectBitEqual(got, want, "MatMul");
  }
}

TEST(SimdKernelEquivalence, MatMulTransAMatchesNaiveReferenceBitForBit) {
  for (const Shape& s : kShapes) {
    Matrix a(s.k, s.m), b(s.k, s.n);  // a is [k x m]: out = a^T b
    Fill(&a, 3);
    Fill(&b, 4);
    Matrix got, want;
    MatMulTransA(a, b, &got);
    RefMatMulTransA(a, b, &want);
    ExpectBitEqual(got, want, "MatMulTransA");
  }
}

TEST(SimdKernelEquivalence, MatMulTransBMatchesNaiveReferenceBitForBit) {
  for (const Shape& s : kShapes) {
    Matrix a(s.m, s.k), b(s.n, s.k);  // b is [n x k]: out = a b^T
    Fill(&a, 5);
    Fill(&b, 6);
    Matrix got, want;
    MatMulTransB(a, b, &got);
    RefMatMulTransB(a, b, &want);
    ExpectBitEqual(got, want, "MatMulTransB");
  }
}

// Non-finite coverage is split into a NaN pass and an Inf pass on purpose.
// When two DIFFERENT NaN bit patterns meet in one add (e.g. the x86
// indefinite 0xFFC00000 from 0 * Inf against a propagated quiet NaN
// 0x7FC00000), the surviving payload is chosen by instruction operand
// order, which neither IEEE 754 nor the compiler pins — the same source
// expression can legally resolve either way under register allocation. The
// kernels' contract covers contribution ORDER and propagation, not payload
// arbitration between distinct NaNs, so each pass plants non-finites such
// that every NaN reaching a given output element carries one well-defined
// bit pattern; within that, the comparison is still bit-for-bit.

TEST(SimdKernelEquivalence, NaNInputsPropagateBitForBit) {
  // Quiet NaNs in both operands, placed to hit vector lanes and scalar
  // tails, plus an exact zero against a NaN (the documented no-zero-skip
  // case: 0 * NaN must poison the output, not be dropped). Every planted
  // NaN is the default quiet NaN, and x86 mul/add preserve a lone NaN
  // operand's payload, so all collisions are same-bits and harmless.
  const Shape shapes[] = {{3, 7, 5}, {2, 9, 300}, {4, 13, 31}};
  for (const Shape& s : shapes) {
    Matrix a(s.m, s.k), b(s.k, s.n);
    Fill(&a, 7);
    Fill(&b, 8);
    a.Row(0)[s.k - 1] = kNaN;      // poisons output row 0
    b.Row(s.k - 1)[s.n - 1] = kNaN;  // poisons output column n-1
    // 0 * NaN: zero on the a side, NaN on the b side of the same p.
    a.Row(0)[0] = 0.0f;
    b.Row(0)[0] = kNaN;  // poisons output column 0 — including (0, 0)
    Matrix got, want;
    MatMul(a, b, &got);
    RefMatMul(a, b, &want);
    ExpectBitEqual(got, want, "MatMul NaN");
    EXPECT_TRUE(std::isnan(got.At(0, 0))) << "0 * NaN was zero-skipped";
    // The same operands through the transposed kernel.
    Matrix got_tb, want_tb;
    Matrix bt(s.n, s.k);
    for (int i = 0; i < s.k; ++i) {
      for (int j = 0; j < s.n; ++j) bt.Row(j)[i] = b.At(i, j);
    }
    MatMulTransB(a, bt, &got_tb);
    RefMatMulTransB(a, bt, &want_tb);
    ExpectBitEqual(got_tb, want_tb, "MatMulTransB NaN");
  }
}

TEST(SimdKernelEquivalence, InfInputsPropagateBitForBit) {
  // Infinities only: products saturate to +/-Inf, and the invalid forms
  // (0 * Inf from the Fill's exact zeros, Inf - Inf from opposite-signed
  // contributions) all generate the one x86 indefinite QNaN — so every NaN
  // that can arise shares a single bit pattern and the bitwise comparison
  // stays well-defined.
  const Shape shapes[] = {{3, 7, 5}, {2, 9, 300}, {4, 13, 31}};
  for (const Shape& s : shapes) {
    Matrix a(s.m, s.k), b(s.k, s.n);
    Fill(&a, 7);
    Fill(&b, 8);
    a.Row(s.m - 1)[0] = kInf;
    a.Row(s.m / 2)[s.k / 2] = -kInf;
    b.Row(0)[s.n / 2] = kInf;
    Matrix got, want;
    MatMul(a, b, &got);
    RefMatMul(a, b, &want);
    ExpectBitEqual(got, want, "MatMul Inf");
    Matrix got_tb, want_tb;
    Matrix bt(s.n, s.k);
    for (int i = 0; i < s.k; ++i) {
      for (int j = 0; j < s.n; ++j) bt.Row(j)[i] = b.At(i, j);
    }
    MatMulTransB(a, bt, &got_tb);
    RefMatMulTransB(a, bt, &want_tb);
    ExpectBitEqual(got_tb, want_tb, "MatMulTransB Inf");
  }
}

TEST(SimdKernelEquivalence, FastTanhNMatchesScalarFastTanhBitForBit) {
  // Odd length so the vector loop leaves a scalar tail; values cover both
  // clamp branches, the saturation region, tiny inputs, zeros and NaN/Inf
  // in vector-lane positions.
  std::vector<float> values;
  for (int i = 0; i < 1003; ++i) {
    values.push_back(static_cast<float>(i - 501) * 0.031f);
  }
  values[8] = kNaN;
  values[9] = -kNaN;
  values[16] = kInf;
  values[17] = -kInf;
  values[24] = 0.0f;
  values[25] = -0.0f;
  values[32] = 11.0f;    // above the +10 clamp
  values[33] = -11.0f;   // below the -10 clamp
  values[40] = 1e-20f;   // subnormal-adjacent
  std::vector<float> got = values;
  FastTanhN(got.data(), got.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(BitEqual(got[i], FastTanh(values[i])))
        << "FastTanhN mismatch at " << i << " for input " << values[i]
        << ": " << got[i] << " vs " << FastTanh(values[i]);
  }
}

TEST(SimdKernelEquivalence, ThreadedForwardBitIdenticalAcrossThreadCounts) {
  // 200 rows forces multiple shards at 4 threads (kMinRowsPerShard = 64).
  // Every (pool, shard count) must reproduce the serial result bit-for-bit
  // because each row runs the identical per-row kernel.
  Mlp net({19, 32, 32, 7}, Activation::kTanh, /*seed=*/99);
  Matrix x(200, 19);
  Fill(&x, 11);
  x.Row(3)[5] = kNaN;  // a poisoned row must poison identically everywhere

  Matrix serial;
  net.Forward(x, &serial);
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    Mlp::ShardedWorkspace ws;
    Matrix threaded;
    net.Forward(x, &threaded, &pool, &ws);
    ExpectBitEqual(threaded, serial, "threaded Forward");
  }
}

TEST(SimdKernelEquivalence, ReportsActiveBackend) {
  // Not an assertion — makes the exercised backend visible in the test log
  // so a CI run shows which ISA the equivalence suite actually covered.
  RecordProperty("simd_backend", simd::kIsaName);
  RecordProperty("float_lanes", simd::kFloatLanes);
  SUCCEED() << "simd backend: " << simd::kIsaName
            << " (lanes=" << simd::kFloatLanes << ")";
}

}  // namespace
}  // namespace fairmove
