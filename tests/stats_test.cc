#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fairmove/common/rng.h"
#include "fairmove/common/stats.h"

namespace fairmove {
namespace {

// ---------------------------------------------------------- RunningStats --

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// ---------------------------------------------------------------- Sample --

TEST(SampleTest, MeanVarianceSum) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 1.25);
}

TEST(SampleTest, PercentileInterpolates) {
  Sample s;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(12.5), 15.0);  // midway between elements
}

TEST(SampleTest, PercentileSingleElement) {
  Sample s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
}

TEST(SampleTest, CdfAt) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(10.0), 1.0);
}

TEST(SampleTest, FractionIn) {
  Sample s;
  for (int i = 0; i < 10; ++i) s.Add(i);  // 0..9
  EXPECT_DOUBLE_EQ(s.FractionIn(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.FractionIn(2.0, 5.0), 0.3);  // 2,3,4
  EXPECT_DOUBLE_EQ(s.FractionIn(9.5, 20.0), 0.0);
}

TEST(SampleTest, BoxSummary) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(v);
  const auto box = s.Box();
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.q1, 2.0);
  EXPECT_DOUBLE_EQ(box.median, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 4.0);
  EXPECT_DOUBLE_EQ(box.max, 5.0);
}

TEST(SampleTest, AddAfterQueryResortsCorrectly) {
  Sample s;
  s.Add(5.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  s.Add(100.0);  // added after a sorted query
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, BucketsAndFractions) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.num_buckets(), 10);
  h.Add(5.0);    // bucket 0
  h.Add(15.0);   // bucket 1
  h.Add(15.5);   // bucket 1
  h.Add(99.9);   // bucket 9
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_DOUBLE_EQ(h.bucket_fraction(1), 0.5);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBuckets) {
  Histogram h(0.0, 10.0, 2);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
}

TEST(HistogramTest, NonFiniteSamplesGoToDedicatedCounterNotBuckets) {
  // Pre-fix, Add() cast (NaN - lo) / width to int — undefined behavior —
  // and an Inf would land in an edge bucket, silently polluting the
  // distribution. Non-finite samples must be visible but bucketless.
  Histogram h(0.0, 100.0, 10);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.non_finite_count(), 3);
  EXPECT_EQ(h.total(), 0);
  for (int i = 0; i < h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0) << "bucket " << i;
  }
  // A poisoned stream must not distort the shares of the finite samples.
  h.Add(15.0);
  EXPECT_EQ(h.total(), 1);
  EXPECT_EQ(h.non_finite_count(), 3);
  EXPECT_DOUBLE_EQ(h.bucket_fraction(1), 1.0);
}

TEST(HistogramTest, HugeFiniteValuesClampToEdgeBucketsWithoutOverflow) {
  // Pre-fix, (x - lo) / width was cast to int BEFORE clamping: for values
  // whose scaled position exceeds int range the cast wraps to an
  // unspecified result (UB), so the clamp downstream repaired nothing.
  Histogram h(0.0, 100.0, 10);
  h.Add(1e300);
  h.Add(std::numeric_limits<double>::max());
  h.Add(-1e300);
  h.Add(std::numeric_limits<double>::lowest());
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.non_finite_count(), 0);
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 2);
  EXPECT_EQ(h.bucket_count(0), 2);
}

TEST(HistogramTest, BoundsAndLabels) {
  Histogram h(0.0, 30.0, 3);
  EXPECT_EQ(h.bucket_bounds(1).first, 10.0);
  EXPECT_EQ(h.bucket_bounds(1).second, 20.0);
  EXPECT_EQ(h.bucket_label(0), "[0, 10)");
}

// ------------------------------------------------------------------ Gini --

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_DOUBLE_EQ(Gini({5.0, 5.0, 5.0, 5.0}), 0.0);
}

TEST(GiniTest, ExtremeInequalityApproachesOne) {
  std::vector<double> v(100, 0.0);
  v.back() = 1000.0;
  EXPECT_GT(Gini(v), 0.95);
}

TEST(GiniTest, KnownValue) {
  // {0, 1}: G = 0.5 by definition.
  EXPECT_DOUBLE_EQ(Gini({0.0, 1.0}), 0.5);
}

TEST(GiniTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Gini({}), 0.0);
  EXPECT_DOUBLE_EQ(Gini({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(Gini({0.0, 0.0}), 0.0);
}

TEST(GiniTest, NegativeValuesWithPositiveTotalClampIntoUnitRange) {
  // {-5, 1, 10}: the raw mean-difference formula gives 30 / 18 ~ 1.67 —
  // outside the Gini coefficient's defined range, which pre-fix leaked
  // straight to callers. The convention for mixed-sign samples with a
  // positive total is to clamp into [0, 1] (maximal inequality).
  EXPECT_DOUBLE_EQ(Gini({-5.0, 1.0, 10.0}), 1.0);
  // A mildly mixed-sign sample whose raw value is already in range must
  // pass through the clamp untouched: {-1, 4, 6}, raw = 14 / 27.
  EXPECT_DOUBLE_EQ(Gini({-1.0, 4.0, 6.0}), 14.0 / 27.0);
  // All-negative (non-positive total) keeps the documented 0 convention.
  EXPECT_DOUBLE_EQ(Gini({-3.0, -1.0}), 0.0);
}

TEST(GiniTest, ScaleInvariant) {
  const std::vector<double> base{1.0, 2.0, 3.0, 10.0};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(v * 7.5);
  EXPECT_NEAR(Gini(base), Gini(scaled), 1e-12);
}

// -------------------------------------------- property-style sweeps ------

class SampleVsRunningStats : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SampleVsRunningStats, AgreeOnMeanAndVariance) {
  Rng rng(GetParam());
  Sample sample;
  RunningStats running;
  const int n = 200 + static_cast<int>(rng.NextBounded(300));
  for (int i = 0; i < n; ++i) {
    const double v = rng.Uniform(-50.0, 150.0);
    sample.Add(v);
    running.Add(v);
  }
  EXPECT_NEAR(sample.Mean(), running.mean(), 1e-9);
  EXPECT_NEAR(sample.Variance(), running.variance(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampleVsRunningStats,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class PercentileMonotone : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PercentileMonotone, NonDecreasingInP) {
  Rng rng(GetParam());
  Sample s;
  for (int i = 0; i < 500; ++i) s.Add(rng.LogNormal(1.0, 1.0));
  double prev = s.Percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = s.Percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace fairmove

using fairmove::RunningStats;

TEST(RunningStatsTest, MergeOfTwoOneSampleSides) {
  // Smallest non-trivial Chan combine: both sides carry zero M2, so the
  // merged variance comes entirely from the between-means term.
  RunningStats a, b;
  a.Add(2.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);  // population: ((2-3)^2+(4-3)^2)/2
  EXPECT_DOUBLE_EQ(a.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(RunningStatsTest, MergeOneSampleIntoMany) {
  RunningStats many;
  for (double v : {1.0, 5.0, 9.0, 13.0}) many.Add(v);
  RunningStats one;
  one.Add(7.0);
  RunningStats expect;  // sequential reference
  for (double v : {1.0, 5.0, 9.0, 13.0, 7.0}) expect.Add(v);
  many.Merge(one);
  EXPECT_EQ(many.count(), expect.count());
  EXPECT_DOUBLE_EQ(many.mean(), expect.mean());
  EXPECT_DOUBLE_EQ(many.variance(), expect.variance());
}

TEST(RunningStatsTest, MergeEmptyIntoOneSampleKeepsDegenerateStats) {
  RunningStats one, empty;
  one.Add(42.0);
  one.Merge(empty);
  EXPECT_EQ(one.count(), 1);
  EXPECT_DOUBLE_EQ(one.mean(), 42.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
  empty.Merge(one);  // and the mirror image
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 42.0);
}

// --------------------------------------------------------------------------
// Confidence-interval helpers for the racing layer (core/racing.h). The
// racing elimination rule compares CiUpper/CiLower across arms, so the edge
// cases here — sub-2-sample counts, all-identical samples — are load-bearing
// for race correctness, not just numeric hygiene.

using fairmove::CiBound;
using fairmove::CiBoundName;
using fairmove::NormalQuantile;
using fairmove::ParseCiBound;

constexpr CiBound kAllBounds[] = {CiBound::kGaussian, CiBound::kHoeffding,
                                  CiBound::kEmpiricalBernstein};

TEST(NormalQuantileTest, MatchesTabulatedValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.9599639845, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.025), -1.9599639845, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.995), 2.5758293035, 1e-8);
  // Tail branch of Acklam's approximation (p < 0.02425).
  EXPECT_NEAR(NormalQuantile(0.001), -3.0902323062, 1e-7);
  // Antisymmetry about the median.
  EXPECT_NEAR(NormalQuantile(0.9), -NormalQuantile(0.1), 1e-9);
}

TEST(CiBoundTest, NameParseRoundTrip) {
  for (CiBound bound : kAllBounds) {
    auto parsed = ParseCiBound(CiBoundName(bound));
    ASSERT_TRUE(parsed.ok()) << CiBoundName(bound);
    EXPECT_EQ(*parsed, bound);
  }
  EXPECT_FALSE(ParseCiBound("gauss").ok());
  EXPECT_FALSE(ParseCiBound("").ok());
}

TEST(CiHalfWidthTest, BelowTwoSamplesIsInfiniteForEveryFamily) {
  // A cell with <= 1 replica has no spread estimate; the racing rule relies
  // on the infinite interval to keep it from winning or losing a race.
  RunningStats empty, one;
  one.Add(3.25);
  for (CiBound bound : kAllBounds) {
    EXPECT_TRUE(std::isinf(empty.CiHalfWidth(bound, 0.05)))
        << CiBoundName(bound);
    EXPECT_TRUE(std::isinf(one.CiHalfWidth(bound, 0.05)))
        << CiBoundName(bound);
    EXPECT_EQ(one.CiLower(bound, 0.05),
              -std::numeric_limits<double>::infinity());
    EXPECT_EQ(one.CiUpper(bound, 0.05),
              std::numeric_limits<double>::infinity());
  }
}

TEST(CiHalfWidthTest, AllIdenticalSamplesGiveAPointInterval) {
  // Deterministic objectives produce identical replicas: observed range and
  // sample variance are exactly 0, so every family collapses to width 0 and
  // ties never eliminate (domination needs a strictly higher lower bound).
  RunningStats s;
  for (int i = 0; i < 5; ++i) s.Add(-0.635);
  for (CiBound bound : kAllBounds) {
    EXPECT_EQ(s.CiHalfWidth(bound, 0.05), 0.0) << CiBoundName(bound);
    EXPECT_EQ(s.CiLower(bound, 0.05), s.mean()) << CiBoundName(bound);
    EXPECT_EQ(s.CiUpper(bound, 0.05), s.mean()) << CiBoundName(bound);
  }
}

TEST(CiHalfWidthTest, KnownValuesAtFourSamples) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  // sample variance 5/3, observed range 3, n = 4, delta = 0.05.
  const double delta = 0.05;
  EXPECT_NEAR(s.CiHalfWidth(CiBound::kGaussian, delta),
              NormalQuantile(0.975) * std::sqrt((5.0 / 3.0) / 4.0), 1e-12);
  EXPECT_NEAR(s.CiHalfWidth(CiBound::kHoeffding, delta),
              3.0 * std::sqrt(std::log(2.0 / delta) / 8.0), 1e-12);
  EXPECT_NEAR(s.CiHalfWidth(CiBound::kEmpiricalBernstein, delta),
              std::sqrt(2.0 * (5.0 / 3.0) * std::log(3.0 / delta) / 4.0) +
                  3.0 * 3.0 * std::log(3.0 / delta) / 4.0,
              1e-12);
  // Tighter confidence (smaller delta) must widen every family.
  for (CiBound bound : kAllBounds) {
    EXPECT_GT(s.CiHalfWidth(bound, 0.01), s.CiHalfWidth(bound, 0.05))
        << CiBoundName(bound);
  }
}

TEST(RunningStatsTest, MergingASingletonReproducesAddExactly) {
  // The racing reduction folds one-sample partials into per-arm
  // accumulators in slot order; this pins the contract in stats.h that the
  // fold is bitwise identical to having Add()ed the sample directly for
  // count/mean/sum/min/max (m2 may differ in the last ulp).
  const double samples[] = {-0.6351234, -0.7149921, -0.6140007, 113.875,
                            49.6875,    -0.001953125};
  RunningStats via_add, via_merge;
  for (double v : samples) {
    via_add.Add(v);
    RunningStats one;
    one.Add(v);
    via_merge.Merge(one);
  }
  EXPECT_EQ(via_add.count(), via_merge.count());
  EXPECT_EQ(via_add.mean(), via_merge.mean());      // bitwise, not NEAR
  EXPECT_EQ(via_add.sum(), via_merge.sum());
  EXPECT_EQ(via_add.min(), via_merge.min());
  EXPECT_EQ(via_add.max(), via_merge.max());
  EXPECT_DOUBLE_EQ(via_add.sample_variance(), via_merge.sample_variance());
}
