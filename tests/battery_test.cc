#include <gtest/gtest.h>

#include "fairmove/sim/battery.h"

namespace fairmove {
namespace {

TEST(BatteryConfigTest, DefaultIsBydE6) {
  const BatteryConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.capacity_kwh, 80.0);
  EXPECT_DOUBLE_EQ(cfg.consumption_kwh_per_km, 0.2);
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(BatteryConfigTest, ValidateRejectsBadValues) {
  BatteryConfig cfg;
  cfg.capacity_kwh = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = BatteryConfig{};
  cfg.consumption_kwh_per_km = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = BatteryConfig{};
  cfg.min_charge_kw = 100.0;  // > max
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = BatteryConfig{};
  cfg.taper_soc = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(BatteryTest, FullPackHas400KmRange) {
  Battery b(BatteryConfig{}, 1.0);
  EXPECT_DOUBLE_EQ(b.RangeKm(), 400.0);
  EXPECT_DOUBLE_EQ(b.kwh(), 80.0);
  EXPECT_FALSE(b.empty());
}

TEST(BatteryTest, ConsumeDrainsProportionally) {
  Battery b(BatteryConfig{}, 1.0);
  EXPECT_DOUBLE_EQ(b.ConsumeKm(100.0), 100.0);
  EXPECT_NEAR(b.soc(), 0.75, 1e-12);
  EXPECT_NEAR(b.RangeKm(), 300.0, 1e-9);
}

TEST(BatteryTest, ConsumeBeyondRangeStopsAtEmpty) {
  Battery b(BatteryConfig{}, 0.1);  // 40 km range
  const double driven = b.ConsumeKm(100.0);
  EXPECT_NEAR(driven, 40.0, 1e-9);
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.ConsumeKm(10.0), 0.0);
}

TEST(BatteryTest, ChargePowerConstantBelowTaper) {
  Battery b(BatteryConfig{}, 0.2);
  EXPECT_DOUBLE_EQ(b.PowerKwAt(0.2), b.config().max_charge_kw);
  EXPECT_DOUBLE_EQ(b.PowerKwAt(0.79), b.config().max_charge_kw);
}

TEST(BatteryTest, ChargePowerTapersAboveKnee) {
  Battery b(BatteryConfig{}, 0.9);
  const double p90 = b.PowerKwAt(0.9);
  EXPECT_LT(p90, b.config().max_charge_kw);
  EXPECT_GT(p90, b.config().min_charge_kw - 1e-9);
  EXPECT_DOUBLE_EQ(b.PowerKwAt(1.0), 0.0);
}

TEST(BatteryTest, ChargeForAddsExpectedEnergy) {
  Battery b(BatteryConfig{}, 0.2);
  // 60 minutes at 40 kW (all below taper) = 40 kWh.
  const double added = b.ChargeFor(60.0);
  EXPECT_NEAR(added, 40.0, 0.5);
  EXPECT_NEAR(b.soc(), 0.7, 0.01);
}

TEST(BatteryTest, ChargeForNeverOvershootsFull) {
  Battery b(BatteryConfig{}, 0.99);
  b.ChargeFor(600.0);
  EXPECT_LE(b.soc(), 1.0 + 1e-12);
  EXPECT_DOUBLE_EQ(b.ChargeFor(10.0), 0.0);
}

TEST(BatteryTest, PowerScaleDeratesCharging) {
  Battery fast(BatteryConfig{}, 0.2);
  Battery slow(BatteryConfig{}, 0.2);
  const double fast_added = fast.ChargeFor(30.0, 1.0);
  const double slow_added = slow.ChargeFor(30.0, 0.5);
  EXPECT_NEAR(slow_added, fast_added / 2.0, 0.3);
}

TEST(BatteryTest, MinutesToReachAgreesWithChargeFor) {
  for (double start : {0.1, 0.2, 0.5, 0.75}) {
    for (double target : {0.6, 0.85, 0.95, 1.0}) {
      if (target <= start) continue;
      Battery b(BatteryConfig{}, start);
      const double minutes = b.MinutesToReach(target);
      b.ChargeFor(minutes);
      EXPECT_GE(b.soc(), target - 0.02)
          << "start=" << start << " target=" << target;
    }
  }
}

TEST(BatteryTest, MinutesToReachZeroWhenAlreadyThere) {
  Battery b(BatteryConfig{}, 0.9);
  EXPECT_DOUBLE_EQ(b.MinutesToReach(0.5), 0.0);
  EXPECT_DOUBLE_EQ(b.MinutesToReach(0.9), 0.0);
}

TEST(BatteryTest, TypicalSessionMatchesPaperDurations) {
  // Forced charge at 20% to ~95% should land in the paper's dominant
  // 45-120 min band (Fig 3).
  Battery b(BatteryConfig{}, 0.2);
  const double minutes = b.MinutesToReach(0.95);
  EXPECT_GT(minutes, 45.0);
  EXPECT_LT(minutes, 120.0);
}

class BatteryRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BatteryRoundTrip, DriveChargeCycleConservesEnergyAccounting) {
  const double initial = std::get<0>(GetParam());
  const double km = std::get<1>(GetParam());
  Battery b(BatteryConfig{}, initial);
  const double driven = b.ConsumeKm(km);
  const double kwh_used = driven * b.config().consumption_kwh_per_km;
  const double added = b.ChargeFor(b.MinutesToReach(initial));
  // Energy put back ~= energy used (within the 1-minute integration step).
  EXPECT_NEAR(added, kwh_used, 1.0);
  EXPECT_NEAR(b.soc(), initial, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Cycles, BatteryRoundTrip,
    ::testing::Combine(::testing::Values(0.5, 0.7, 0.9),
                       ::testing::Values(10.0, 60.0, 150.0)));

}  // namespace
}  // namespace fairmove
