// Tests for the deterministic task-parallel execution layer: the ThreadPool
// primitive itself, and the bit-identity contract of every layer wired on
// top of it (sharded Mlp::Forward, the evaluator's method fan-out, the
// repeated-comparison grid). Carries the `parallel` ctest label so the
// whole file can be run under TSan with `ctest -L parallel`.

#include "fairmove/common/parallel.h"

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fairmove/core/experiment.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/nn/mlp.h"

namespace fairmove {
namespace {

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SerialPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int order_check = 0;
  pool.ParallelFor(8, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    // Inline execution implies ascending order too.
    EXPECT_EQ(order_check, i);
    ++order_check;
  });
  EXPECT_EQ(order_check, 8);
}

TEST(ThreadPoolTest, EmptyAndSingleRegionsAreNoOpsAndInline) {
  ThreadPool pool(4);
  int runs = 0;
  pool.ParallelFor(0, [&](int64_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(1, [&](int64_t i) {
    EXPECT_EQ(i, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);  // n==1 short-circuits
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer lanes than outer tasks forces nesting stress
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Indices 3 and 7 both throw; the contract says index 3's exception
  // surfaces regardless of completion timing.
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      pool.ParallelFor(16, [&](int64_t i) {
        if (i == 3) throw std::runtime_error("boom-3");
        if (i == 7) throw std::runtime_error("boom-7");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom-3");
    }
  }
}

TEST(ThreadPoolTest, ExceptionRegionStillAccountsEveryIndex) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](int64_t i) {
                                  ran.fetch_add(1);
                                  if (i % 2 == 0) throw std::logic_error("x");
                                }),
               std::logic_error);
  EXPECT_EQ(ran.load(), 64);  // no index abandoned mid-region
}

TEST(ThreadPoolTest, TaskGroupRunsAllTasksAndIsReusable) {
  ThreadPool pool(3);
  ThreadPool::TaskGroup group(&pool);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i) group.Spawn([&sum, i] { sum.fetch_add(i); });
  group.Wait();
  EXPECT_EQ(sum.load(), 55);
  // A drained group accepts a fresh batch.
  group.Spawn([&sum] { sum.fetch_add(100); });
  group.Wait();
  EXPECT_EQ(sum.load(), 155);
  group.Wait();  // empty Wait is a no-op
  EXPECT_EQ(sum.load(), 155);
}

TEST(ThreadPoolTest, SetGlobalThreadsSwapsThePool) {
  const int before = GlobalPool().num_threads();
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalPool().num_threads(), 3);
  std::atomic<int> n{0};
  GlobalPool().ParallelFor(100, [&](int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
  SetGlobalThreads(before);
  EXPECT_EQ(GlobalPool().num_threads(), before);
}

// ------------------------------------------------- sharded Mlp::Forward --

// Byte-compares two matrices (bit-identity, not approximate equality).
void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(ShardedForwardTest, BitIdenticalToSerialAcrossPoolSizes) {
  Mlp net({12, 32, 32, 7}, Activation::kTanh, /*seed=*/99);
  // 513 rows: large enough to shard, and deliberately not a multiple of
  // any pool size below (exercises the uneven remainder split).
  Matrix x(513, 12);
  Rng rng(1234);
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      x.At(i, j) = static_cast<float>(rng.Gaussian(0.0, 2.0));
    }
  }
  Matrix serial;
  Mlp::Workspace ws;
  net.Forward(x, &serial, &ws);

  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    Mlp::ShardedWorkspace sws;
    Matrix sharded;
    net.Forward(x, &sharded, &pool, &sws);
    ExpectBitIdentical(serial, sharded);
    // Warm-workspace second pass must agree too (buffer reuse path).
    net.Forward(x, &sharded, &pool, &sws);
    ExpectBitIdentical(serial, sharded);
  }
}

TEST(ShardedForwardTest, SmallBatchFallsBackToOneShard) {
  Mlp net({6, 16, 3}, Activation::kRelu, /*seed=*/5);
  Matrix x(10, 6);  // below the per-shard row floor
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) x.At(i, j) = 0.1f * (i - j);
  }
  Matrix serial;
  net.Forward(x, &serial);
  ThreadPool pool(8);
  Mlp::ShardedWorkspace sws;
  Matrix sharded;
  net.Forward(x, &sharded, &pool, &sws);
  ExpectBitIdentical(serial, sharded);
}

// ----------------------------------------------- evaluator method fan-out --

// A replica-based parallel Run() must reproduce the serial shared-simulator
// path bit for bit (MethodResult comparisons go through the derived
// comparison metrics, which are doubles — EQ, not NEAR, on purpose).
TEST(ParallelEvaluatorTest, ReplicaRunMatchesSharedSimulatorRun) {
  const FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.03);
  const std::vector<PolicyKind> kinds = {PolicyKind::kGroundTruth,
                                         PolicyKind::kSd2,
                                         PolicyKind::kFairMove};

  auto system_a = std::move(FairMoveSystem::Create(cfg)).value();
  Evaluator serial = system_a->MakeEvaluator();
  const std::vector<MethodResult> want = serial.Run(kinds);  // shared sim

  SetGlobalThreads(4);
  auto system_b = std::move(FairMoveSystem::Create(cfg)).value();
  const std::vector<MethodResult> got = system_b->RunComparison(kinds);
  SetGlobalThreads(1);

  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].name, got[i].name);
    EXPECT_EQ(want[i].vs_gt.pipe, got[i].vs_gt.pipe) << want[i].name;
    EXPECT_EQ(want[i].vs_gt.pipf, got[i].vs_gt.pipf) << want[i].name;
    EXPECT_EQ(want[i].vs_gt.prct, got[i].vs_gt.prct) << want[i].name;
    EXPECT_EQ(want[i].vs_gt.prit, got[i].vs_gt.prit) << want[i].name;
    EXPECT_EQ(want[i].metrics.pf, got[i].metrics.pf) << want[i].name;
    EXPECT_EQ(want[i].metrics.pe.Mean(), got[i].metrics.pe.Mean())
        << want[i].name;
  }
}

// ------------------------------------------- repeated-comparison grid --

// The flagship determinism check of the issue: the full comparison table at
// FAIRMOVE_THREADS=1 vs 4 compares byte-identical.
TEST(ParallelExperimentTest, RepeatedComparisonTableIsThreadCountInvariant) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.03);
  cfg.trainer.episodes = 1;
  cfg.eval.days = 1;
  const std::vector<PolicyKind> kinds = {
      PolicyKind::kGroundTruth, PolicyKind::kSd2, PolicyKind::kFairMove};

  SetGlobalThreads(1);
  auto serial_or = RunRepeatedComparison(cfg, kinds, /*repeats=*/2);
  ASSERT_TRUE(serial_or.ok()) << serial_or.status();

  SetGlobalThreads(4);
  auto parallel_or = RunRepeatedComparison(cfg, kinds, /*repeats=*/2);
  SetGlobalThreads(1);
  ASSERT_TRUE(parallel_or.ok()) << parallel_or.status();

  const RepeatedComparison& a = serial_or.value();
  const RepeatedComparison& b = parallel_or.value();
  EXPECT_EQ(a.ToTable().ToCsv(), b.ToTable().ToCsv());  // byte-identical
  ASSERT_EQ(a.methods.size(), b.methods.size());
  for (size_t i = 0; i < a.methods.size(); ++i) {
    // Beyond the rendered table: the raw accumulators agree exactly.
    EXPECT_EQ(a.methods[i].pipe.mean(), b.methods[i].pipe.mean());
    EXPECT_EQ(a.methods[i].pipe.variance(), b.methods[i].pipe.variance());
    EXPECT_EQ(a.methods[i].pe_mean.mean(), b.methods[i].pe_mean.mean());
    EXPECT_EQ(a.methods[i].service_rate.mean(),
              b.methods[i].service_rate.mean());
  }
}

}  // namespace
}  // namespace fairmove
