// Live observability: the always-on flight recorder (ring wrap, interning,
// FMFR1 dump round-trip + CRC rejection), log-bucketed latency histograms
// with epoch-rotated sliding windows, the periodic metrics exporter and its
// artefacts, Chrome/Perfetto trace conversion with balance guarantees, the
// stall watchdog, and — via real forked children — that an aborted or
// SIGKILLed process still leaves a parseable flight dump behind.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fairmove/common/parallel.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/metrics.h"
#include "fairmove/obs/exporter.h"
#include "fairmove/obs/flight_recorder.h"
#include "fairmove/obs/json_parse.h"
#include "fairmove/obs/jsonl.h"
#include "fairmove/obs/latency.h"
#include "fairmove/obs/telemetry.h"
#include "fairmove/obs/trace.h"
#include "fairmove/obs/watchdog.h"

namespace fairmove {
namespace {

std::string TempSubdir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fairmove_flight_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------- flight recorder --

TEST(FlightRecorderTest, RecordedEventsRoundTripThroughTheDump) {
  FlightRecorder::SetEnabled(true);
  FlightRecorder::ResetForTesting();
  const uint16_t begin_id = FlightRecorder::InternName("rt.span");
  const uint16_t inst_id = FlightRecorder::InternName("rt.instant");
  EXPECT_EQ(begin_id, FlightRecorder::InternName("rt.span"));  // idempotent
  FlightRecorder::Record(kFlightSpanBegin, begin_id, 7, 70);
  FlightRecorder::Instant(inst_id, 8, 80);
  FlightRecorder::Record(kFlightSpanEnd, begin_id, 7, 71);

  const StatusOr<FlightDump> dump = ParseFlightDump(
      FlightRecorder::SerializeDump());
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  ASSERT_GT(dump->names.size(), static_cast<size_t>(begin_id));
  EXPECT_EQ(dump->names[0], "(overflow)");
  EXPECT_EQ(dump->names[begin_id], "rt.span");
  EXPECT_EQ(dump->names[inst_id], "rt.instant");

  // Find our three events on whichever ring this thread landed in, in
  // chronological order with args intact.
  std::vector<FlightEvent> mine;
  for (const FlightDumpRing& ring : dump->rings) {
    int64_t prev_t = 0;
    for (const FlightEvent& event : ring.events) {
      EXPECT_GE(event.t_ns, prev_t) << "events must be chronological";
      prev_t = event.t_ns;
      if (event.name_id == begin_id || event.name_id == inst_id) {
        mine.push_back(event);
      }
    }
  }
  ASSERT_EQ(mine.size(), 3u);
  EXPECT_EQ(mine[0].kind, kFlightSpanBegin);
  EXPECT_EQ(mine[0].arg0, 7);
  EXPECT_EQ(mine[0].arg1, 70);
  EXPECT_EQ(mine[1].kind, kFlightInstant);
  EXPECT_EQ(mine[1].arg0, 8);
  EXPECT_EQ(mine[2].kind, kFlightSpanEnd);
  EXPECT_EQ(mine[2].arg1, 71);
}

TEST(FlightRecorderTest, RingWrapKeepsTheMostRecentEvents) {
  FlightRecorder::SetEnabled(true);
  FlightRecorder::ResetForTesting();
  const uint16_t id = FlightRecorder::InternName("wrap.event");
  // Default capacity is 4096; overfill by 3x so the ring must wrap.
  const int total = 3 * 4096;
  for (int i = 0; i < total; ++i) FlightRecorder::Instant(id, i, 0);

  const StatusOr<FlightDump> dump =
      ParseFlightDump(FlightRecorder::SerializeDump());
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  const FlightDumpRing* ring = nullptr;
  for (const FlightDumpRing& r : dump->rings) {
    for (const FlightEvent& e : r.events) {
      if (e.name_id == id) ring = &r;
    }
  }
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->recorded_total, static_cast<uint64_t>(total));
  EXPECT_LE(ring->events.size(), 4096u);
  // The survivors are exactly the newest events, still in order.
  EXPECT_EQ(ring->events.back().arg0, total - 1);
  EXPECT_EQ(ring->events.front().arg0,
            total - static_cast<int>(ring->events.size()));
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder::SetEnabled(true);
  FlightRecorder::ResetForTesting();
  const uint16_t id = FlightRecorder::InternName("toggle.event");
  FlightRecorder::SetEnabled(false);
  FM_FLIGHT_EVENT("toggle.event", 1, 1);  // macro gates on enabled()
  FlightRecorder::SetEnabled(true);
  FM_FLIGHT_EVENT("toggle.event", 2, 2);
  const StatusOr<FlightDump> dump =
      ParseFlightDump(FlightRecorder::SerializeDump());
  ASSERT_TRUE(dump.ok());
  int seen = 0;
  for (const FlightDumpRing& ring : dump->rings) {
    for (const FlightEvent& event : ring.events) {
      if (event.name_id == id) {
        ++seen;
        EXPECT_EQ(event.arg0, 2);
      }
    }
  }
  EXPECT_EQ(seen, 1);
}

TEST(FlightRecorderTest, ParserRejectsCorruptedAndTruncatedDumps) {
  FlightRecorder::SetEnabled(true);
  FlightRecorder::ResetForTesting();
  FM_FLIGHT_EVENT("corrupt.event", 1, 2);
  const std::string good = FlightRecorder::SerializeDump();
  ASSERT_TRUE(ParseFlightDump(good).ok());

  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x5A;  // payload byte -> CRC mismatch
  EXPECT_FALSE(ParseFlightDump(flipped).ok());

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseFlightDump(bad_magic).ok());

  EXPECT_FALSE(ParseFlightDump(good.substr(0, good.size() - 7)).ok());
  EXPECT_FALSE(ParseFlightDump("").ok());
}

TEST(FlightRecorderTest, DumpToFileRoundTrips) {
  FlightRecorder::SetEnabled(true);
  FlightRecorder::ResetForTesting();
  FM_FLIGHT_EVENT("file.event", 3, 4);
  const std::string dir = TempSubdir("dumpfile");
  const std::string path = dir + "/dump.fmfr";
  ASSERT_TRUE(FlightRecorder::DumpToFile(path).ok());
  const StatusOr<FlightDump> dump = ReadFlightDumpFile(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_FALSE(dump->rings.empty());
}

// ------------------------------------------------------- log histograms ---

TEST(LogHistogramTest, SmallValuesLandInExactUnitBuckets) {
  for (int64_t v = 0; v < (1 << LogHistogram::kSubBits); ++v) {
    EXPECT_EQ(LogHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LogHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  EXPECT_EQ(LogHistogram::BucketIndex(-5), 0);  // negative clamps
}

TEST(LogHistogramTest, BucketBoundsBracketTheirValues) {
  const int64_t samples[] = {16,      17,        100,        1023,
                             4096,    123456789, 1LL << 40,  (1LL << 62) + 5};
  int prev_index = -1;
  for (int64_t v : samples) {
    const int index = LogHistogram::BucketIndex(v);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, LogHistogram::kNumBuckets);
    EXPECT_LE(LogHistogram::BucketLowerBound(index), v) << "v=" << v;
    EXPECT_GT(LogHistogram::BucketUpperBound(index), v) << "v=" << v;
    EXPECT_GT(index, prev_index) << "indices must grow with value";
    prev_index = index;
  }
}

TEST(LogHistogramTest, QuantilesApproximateAUniformStream) {
  LogHistogram hist;
  for (int64_t v = 1; v <= 1000; ++v) hist.Record(v);
  const LogHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_EQ(snap.max, 1000);
  EXPECT_EQ(snap.sum, 1000 * 1001 / 2);
  // Worst-case relative bucket error is 2^-4 ~ 6%; allow 10%.
  EXPECT_NEAR(static_cast<double>(snap.Quantile(0.50)), 500.0, 50.0);
  EXPECT_NEAR(static_cast<double>(snap.Quantile(0.90)), 900.0, 90.0);
  EXPECT_NEAR(static_cast<double>(snap.Quantile(0.99)), 990.0, 99.0);
  // The top quantile clamps to the exact observed max.
  EXPECT_LE(snap.Quantile(0.999), 1000);
}

TEST(LogHistogramTest, SnapshotsMergeAdditively) {
  LogHistogram a;
  LogHistogram b;
  for (int64_t v = 1; v <= 100; ++v) a.Record(v);
  for (int64_t v = 1000; v <= 1100; ++v) b.Record(v);
  LogHistogram::Snapshot merged = a.TakeSnapshot();
  merged.MergeFrom(b.TakeSnapshot());
  EXPECT_EQ(merged.count, 201);
  EXPECT_EQ(merged.max, 1100);
  EXPECT_GT(merged.Quantile(0.9), 900);
  EXPECT_LT(merged.Quantile(0.1), 200);
}

// ------------------------------------------------------ latency recorder --

TEST(LatencyRecorderTest, EpochRotationIsolatesSlidingWindows) {
  LatencyRecorder recorder("test.rotation");
  recorder.Record(100);
  recorder.Record(200);
  // Epoch 0 is still open: no completed window yet.
  EXPECT_EQ(recorder.current_epoch(), 0u);
  EXPECT_EQ(recorder.Window(1).count, 0);
  EXPECT_EQ(recorder.AdvanceEpoch(), 1u);
  EXPECT_EQ(recorder.Window(1).count, 2);
  recorder.Record(300);
  recorder.AdvanceEpoch();
  EXPECT_EQ(recorder.Window(1).count, 1);   // just the last completed epoch
  EXPECT_EQ(recorder.Window(2).count, 3);   // both completed epochs
  EXPECT_EQ(recorder.Cumulative().count, 3);
  EXPECT_EQ(recorder.Cumulative().max, 300);
}

TEST(LatencyRecorderTest, WindowSurvivesSlotReuseAfterManyEpochs) {
  LatencyRecorder recorder("test.wrap");
  for (int e = 0; e < 2 * LatencyRecorder::kWindowSlots; ++e) {
    recorder.Record(10 + e);
    recorder.AdvanceEpoch();
  }
  // Only kWindowSlots - 1 completed epochs are addressable; asking for more
  // caps there instead of reading the slot about to be cleared.
  const LogHistogram::Snapshot wide =
      recorder.Window(LatencyRecorder::kWindowSlots + 3);
  EXPECT_EQ(wide.count, LatencyRecorder::kWindowSlots - 1);
  EXPECT_EQ(recorder.Window(1).count, 1);
  EXPECT_EQ(recorder.Cumulative().count, 2 * LatencyRecorder::kWindowSlots);
}

TEST(LatencyRegistryTest, GetInternsOneRecorderPerName) {
  LatencyRecorder& a = LatencyRegistry::Get("registry.name");
  LatencyRecorder& b = LatencyRegistry::Get("registry.name");
  EXPECT_EQ(&a, &b);
  bool found = false;
  for (LatencyRecorder* recorder : LatencyRegistry::All()) {
    if (recorder == &a) found = true;
  }
  EXPECT_TRUE(found);
  { FM_LATENCY_SCOPE("registry.scoped"); }
  EXPECT_GE(LatencyRegistry::Get("registry.scoped").Cumulative().count, 1);
}

// ------------------------------------------------------------- exporter ---

TEST(ExporterTest, ParseExportSpecAcceptsDirColonPeriod) {
  const StatusOr<ExporterOptions> ok = ParseExportSpec("/tmp/x:250");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->dir, "/tmp/x");
  EXPECT_EQ(ok->period_ms, 250);
  // Period is the LAST colon field so ':' in the dir still parses.
  const StatusOr<ExporterOptions> colon = ParseExportSpec("/tmp/a:b:100");
  ASSERT_TRUE(colon.ok());
  EXPECT_EQ(colon->dir, "/tmp/a:b");
  EXPECT_FALSE(ParseExportSpec("/tmp/x").ok());
  EXPECT_FALSE(ParseExportSpec("/tmp/x:").ok());
  EXPECT_FALSE(ParseExportSpec(":100").ok());
  EXPECT_FALSE(ParseExportSpec("/tmp/x:5").ok());       // below minimum
  EXPECT_FALSE(ParseExportSpec("/tmp/x:abc").ok());
}

TEST(ExporterTest, PrometheusNameSanitises) {
  EXPECT_EQ(PrometheusName("sim.step"), "sim_step");
  EXPECT_EQ(PrometheusName("a/b-c"), "a_b_c");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName("ok_name:x"), "ok_name:x");
}

TEST(ExporterTest, TickPublishesAllFourArtefacts) {
  const std::string dir = TempSubdir("exporter");
  FlightRecorder::SetEnabled(true);
  LatencyRecorder& recorder = LatencyRegistry::Get("exporter.probe");
  for (int64_t v = 1000; v < 2000; v += 100) recorder.Record(v);
  FM_FLIGHT_EVENT("exporter.event", 1, 2);

  const StatusOr<MetricsExporter*> exporter =
      MetricsExporter::Start({.dir = dir, .period_ms = 3600000});
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  (*exporter)->Tick();
  recorder.Record(5000);
  (*exporter)->Stop();  // joins the thread + one final snapshot
  EXPECT_GE((*exporter)->ticks(), 2u);

  // export.json: schema + freshness fields a poller relies on.
  std::ifstream in(dir + "/export.json");
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const StatusOr<JsonValue> root = ParseJson(text);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(root->StringOr("schema", ""), "fairmove.export.v1");
  EXPECT_GE(root->NumberOr("freshness_seq", 0.0), 2.0);
  EXPECT_GE(root->StringOr("freshness_utc", "").size(), 20u);
  ASSERT_NE(root->Find("latency"), nullptr);
  ASSERT_NE(root->Find("metrics"), nullptr);
  bool probe_found = false;
  for (const JsonValue& entry : root->Find("latency")->items) {
    if (entry.StringOr("name", "") == "exporter.probe") {
      probe_found = true;
      EXPECT_GE(entry.NumberOr("cum_count", 0.0), 10.0);
      EXPECT_GT(entry.NumberOr("p50_ns", 0.0), 0.0);
    }
  }
  EXPECT_TRUE(probe_found);

  // windows.jsonl: parseable rows with per-recorder monotonic epoch ids.
  std::ifstream windows(dir + "/windows.jsonl");
  ASSERT_TRUE(windows.good());
  std::vector<std::pair<std::string, int64_t>> last_epoch;
  std::string line;
  int64_t rows = 0;
  while (std::getline(windows, line)) {
    if (line.empty()) continue;
    const StatusOr<JsonValue> row = ParseJson(line);
    ASSERT_TRUE(row.ok()) << line;
    const std::string name = row->StringOr("name", "");
    const int64_t epoch =
        static_cast<int64_t>(row->NumberOr("epoch_id", -1.0));
    ASSERT_GE(epoch, 0) << line;
    bool seen = false;
    for (auto& entry : last_epoch) {
      if (entry.first == name) {
        EXPECT_GT(epoch, entry.second) << "epoch ids must be monotonic";
        entry.second = epoch;
        seen = true;
      }
    }
    if (!seen) last_epoch.emplace_back(name, epoch);
    ++rows;
  }
  EXPECT_GT(rows, 0);

  // metrics.prom: exposition header + the latency summary.
  std::ifstream prom_in(dir + "/metrics.prom");
  ASSERT_TRUE(prom_in.good());
  std::string prom((std::istreambuf_iterator<char>(prom_in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(prom.rfind("# fairmove metrics export", 0), 0u);
  EXPECT_NE(prom.find("fairmove_latency_exporter_probe_ns"),
            std::string::npos);
  EXPECT_NE(prom.find("{quantile=\"0.999\"}"), std::string::npos);

  // flight.fmfr: a CRC-valid dump survives as the last export.
  const StatusOr<FlightDump> dump = ReadFlightDumpFile(dir + "/flight.fmfr");
  EXPECT_TRUE(dump.ok()) << dump.status().ToString();
}

// ------------------------------------------------- trace conversion -------

FlightDump MakeDump(std::vector<FlightEvent> events) {
  FlightDump dump;
  dump.names = {"(overflow)", "alpha", "beta"};
  FlightDumpRing ring;
  ring.tid = 0;
  ring.recorded_total = events.size();
  ring.events = std::move(events);
  dump.rings.push_back(std::move(ring));
  return dump;
}

TEST(TraceTest, BalancedSpansConvertWithoutSynthesis) {
  const FlightDump dump = MakeDump({
      {100, 1, kFlightSpanBegin, 0, 1, 0},
      {150, 2, kFlightInstant, 0, 5, 6},
      {200, 1, kFlightSpanEnd, 0, 1, 0},
  });
  const std::string trace = FlightDumpToChromeTrace(dump);
  EXPECT_TRUE(ValidateChromeTrace(trace).ok()) << trace;
  EXPECT_NE(trace.find("\"alpha\""), std::string::npos);
  EXPECT_NE(trace.find("\"beta\""), std::string::npos);
  EXPECT_EQ(trace.find("open_at_crash"), std::string::npos);
}

TEST(TraceTest, CrashOpenSpansAreSynthesisedClosedAndOrphanEndsDropped) {
  const FlightDump dump = MakeDump({
      {50, 2, kFlightSpanEnd, 0, 0, 0},    // begin lost to ring wrap
      {100, 1, kFlightSpanBegin, 0, 0, 0},  // still open at crash
      {170, 2, kFlightInstant, 0, 0, 0},
  });
  const std::string trace = FlightDumpToChromeTrace(dump);
  EXPECT_TRUE(ValidateChromeTrace(trace).ok()) << trace;
  EXPECT_NE(trace.find("open_at_crash"), std::string::npos);
}

TEST(TraceTest, ValidatorRejectsUnbalancedTraces) {
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":0,)"
                   R"("name":"x"}]})")
                   .ok());
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":0,)"
                   R"("name":"x"}]})")
                   .ok());
  EXPECT_TRUE(ValidateChromeTrace(
                  R"({"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":0,)"
                  R"("name":"x"},{"ph":"E","pid":1,"tid":0,"ts":5,)"
                  R"("name":"x"}]})")
                  .ok());
  EXPECT_FALSE(ValidateChromeTrace("not json").ok());
  EXPECT_FALSE(ValidateChromeTrace("{}").ok());
}

TEST(TraceTest, ProfileJsonConvertsToNestedCompleteEvents) {
  const std::string profile =
      R"({"spans":[{"name":"outer","count":1,"total_ns":10000,)"
      R"("max_ns":10000,"children":[{"name":"inner","count":2,)"
      R"("total_ns":4000,"max_ns":3000,"children":[]}]}]})";
  const StatusOr<std::string> trace = ProfileJsonToChromeTrace(profile);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(ValidateChromeTrace(*trace).ok()) << *trace;
  EXPECT_NE(trace->find("\"outer\""), std::string::npos);
  EXPECT_NE(trace->find("\"inner\""), std::string::npos);
  EXPECT_FALSE(ProfileJsonToChromeTrace("garbage").ok());
}

// ------------------------------------------------------------ watchdog ----

TEST(WatchdogTest, EmitsOneStallPerQuietPeriodAndRearms) {
  const std::string dir = TempSubdir("watchdog");
  FlightRecorder::SetEnabled(true);
  StallWatchdog::Stop();
  const int64_t before = StallWatchdog::stall_count();
  StallWatchdog::Start(/*budget_ms=*/150, dir);
  ASSERT_TRUE(StallWatchdog::running());
  StallWatchdog::Heartbeat();
  // Go quiet past the budget: exactly one stall event must appear.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (StallWatchdog::stall_count() == before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(StallWatchdog::stall_count(), before + 1);
  // Still quiet: no second report without progress in between.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(StallWatchdog::stall_count(), before + 1);
  StallWatchdog::Stop();
  EXPECT_FALSE(StallWatchdog::running());

  const StatusOr<FlightDump> dump =
      ReadFlightDumpFile(dir + "/flight_stall.fmfr");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  bool stall_event = false;
  for (const FlightDumpRing& ring : dump->rings) {
    for (const FlightEvent& event : ring.events) {
      if (static_cast<size_t>(event.name_id) < dump->names.size() &&
          dump->names[event.name_id] == "obs.stall") {
        stall_event = true;
      }
    }
  }
  EXPECT_TRUE(stall_event);
}

// ----------------------------------------- exporter ⊥ simulation ----------

std::string FleetDigest(const FleetMetrics& m) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%.17g|%.17g|%.17g|%.17g|%lld|%lld|%lld|%lld",
                m.pe.empty() ? 0.0 : m.pe.Mean(), m.pf, m.pe_sum,
                m.revenue_cny, static_cast<long long>(m.trips),
                static_cast<long long>(m.charge_events),
                static_cast<long long>(m.expired_requests),
                static_cast<long long>(m.total_requests));
  return buf;
}

std::string RunTinySim(bool export_on, int threads, const std::string& dir) {
  SetGlobalThreads(threads);
  MetricsExporter* exporter = nullptr;
  if (export_on) {
    StatusOr<MetricsExporter*> started =
        MetricsExporter::Start({.dir = dir, .period_ms = 10});
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    exporter = *started;
  }
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto policy = MakePolicy(PolicyKind::kGroundTruth, system->sim(), 7000);
  system->sim().Reset();
  system->sim().RunSlots(policy.get(), 200);
  const std::string digest = FleetDigest(ComputeFleetMetrics(system->sim()));
  if (exporter != nullptr) exporter->Stop();
  SetGlobalThreads(1);
  return digest;
}

// The acceptance bar of the live exporter: turning it on — with its
// background thread rotating epochs and snapshotting registries every 10 ms
// while the simulation runs — must not change one byte of simulation
// output, at FAIRMOVE_THREADS 1 and 4 alike.
TEST(ExporterInvarianceTest, OnOffProducesByteIdenticalFleetMetrics) {
  const std::string off_1 = RunTinySim(false, 1, "");
  const std::string on_1 = RunTinySim(true, 1, TempSubdir("invariance1"));
  EXPECT_EQ(off_1, on_1);

  const std::string off_4 = RunTinySim(false, 4, "");
  const std::string on_4 = RunTinySim(true, 4, TempSubdir("invariance4"));
  EXPECT_EQ(off_4, on_4);
  EXPECT_EQ(off_1, off_4);
}

// ------------------------------------------------------ crash capture -----

TEST(CrashDumpTest, AbortedChildLeavesDumpTraceAndFlushedJsonl) {
  SetGlobalThreads(1);  // no worker threads to lose across fork()
  const std::string dir = TempSubdir("crash_abort");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm crash capture, stream a few telemetry rows, leave a span
    // open mid-"episode", then fail an FM_CHECK. The fail hooks must flush
    // the JSONL stream and write the flight dump before abort re-raises.
    FlightRecorder::SetEnabled(true);
    FlightRecorder::SetCrashDumpDir(dir);
    JsonlWriter writer;
    if (!writer.Open(dir + "/rows.jsonl").ok()) _exit(10);
    for (int64_t i = 0; i < 3; ++i) {
      JsonObject row;
      row.Set("kind", "row").Set("i", i);
      writer.Write(row);
    }
    static const uint16_t span_id =
        FlightRecorder::InternName("child.episode");
    FlightRecorder::Record(kFlightSpanBegin, span_id, 7, 0);
    FM_FLIGHT_EVENT("child.work", 1, 2);
    FM_CHECK(false) << "synthetic mid-episode failure";
    _exit(11);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const StatusOr<FlightDump> dump =
      ReadFlightDumpFile(dir + "/flight_crash.fmfr");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  bool begin_seen = false;
  for (const FlightDumpRing& ring : dump->rings) {
    for (const FlightEvent& event : ring.events) {
      if (static_cast<size_t>(event.name_id) < dump->names.size() &&
          dump->names[event.name_id] == "child.episode" &&
          event.kind == kFlightSpanBegin) {
        begin_seen = true;
      }
    }
  }
  EXPECT_TRUE(begin_seen);

  // The dump converts to balanced Perfetto JSON, with the mid-crash open
  // span synthetically closed and flagged.
  const std::string trace = FlightDumpToChromeTrace(*dump);
  EXPECT_TRUE(ValidateChromeTrace(trace).ok());
  EXPECT_NE(trace.find("open_at_crash"), std::string::npos);

  // Every row written before the failure survived the abort, whole.
  EXPECT_EQ(
      std::move(ValidateJsonlFile(dir + "/rows.jsonl", {"kind", "i"})).value(),
      3);
}

TEST(CrashDumpTest, SigkilledChildLeavesLastExportedFlightDump) {
  SetGlobalThreads(1);
  const std::string dir = TempSubdir("crash_kill");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: run a periodic exporter and keep recording until killed. The
    // exporter replaces flight.fmfr atomically every 20 ms, so whatever
    // tick completed last must survive SIGKILL intact.
    FlightRecorder::SetEnabled(true);
    StatusOr<MetricsExporter*> exporter =
        MetricsExporter::Start({.dir = dir, .period_ms = 20});
    if (!exporter.ok()) _exit(10);
    static LatencyRecorder& recorder = LatencyRegistry::Get("child.loop");
    for (int i = 0; i < 100000; ++i) {
      FM_FLIGHT_EVENT("child.tick", i, 0);
      recorder.Record(1000 + i);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    _exit(0);  // parent kills us long before this
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const StatusOr<FlightDump> dump = ReadFlightDumpFile(dir + "/flight.fmfr");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  bool ticks_seen = false;
  for (const FlightDumpRing& ring : dump->rings) {
    for (const FlightEvent& event : ring.events) {
      if (static_cast<size_t>(event.name_id) < dump->names.size() &&
          dump->names[event.name_id] == "child.tick") {
        ticks_seen = true;
      }
    }
  }
  EXPECT_TRUE(ticks_seen);
  const std::string trace = FlightDumpToChromeTrace(*dump);
  EXPECT_TRUE(ValidateChromeTrace(trace).ok());

  // export.json was replaced atomically too: whole, schema-tagged, fresh.
  std::ifstream in(dir + "/export.json");
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const StatusOr<JsonValue> root = ParseJson(text);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(root->StringOr("schema", ""), "fairmove.export.v1");
  EXPECT_GE(root->NumberOr("freshness_seq", 0.0), 1.0);

  // windows.jsonl may end in one torn line (the kill can land mid-write);
  // every complete line must parse with monotonic per-recorder epoch ids.
  std::ifstream windows(dir + "/windows.jsonl");
  ASSERT_TRUE(windows.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(windows, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_FALSE(lines.empty());
  std::vector<std::pair<std::string, int64_t>> last_epoch;
  for (size_t i = 0; i < lines.size(); ++i) {
    const StatusOr<JsonValue> row = ParseJson(lines[i]);
    if (!row.ok()) {
      EXPECT_EQ(i, lines.size() - 1) << "only the final line may be torn";
      continue;
    }
    const std::string name = row->StringOr("name", "");
    const int64_t epoch =
        static_cast<int64_t>(row->NumberOr("epoch_id", -1.0));
    bool seen = false;
    for (auto& entry : last_epoch) {
      if (entry.first == name) {
        EXPECT_GT(epoch, entry.second);
        entry.second = epoch;
        seen = true;
      }
    }
    if (!seen) last_epoch.emplace_back(name, epoch);
  }
}

}  // namespace
}  // namespace fairmove
