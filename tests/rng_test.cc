#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "fairmove/common/rng.h"
#include "fairmove/common/stats.h"

namespace fairmove {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(9);
  const uint64_t first = a.NextU64();
  a.NextU64();
  a.Seed(9);
  EXPECT_EQ(a.NextU64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(5);
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(n), n);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(6);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.NextBounded(10)];
  for (int c : seen) EXPECT_GT(c, 300);  // each bin ~500 expected
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Gaussian(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(11);
  for (double mean : {0.0, 0.5, 3.0, 12.0, 80.0}) {
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.Add(rng.Poisson(mean));
    EXPECT_NEAR(s.mean(), mean, std::max(0.05, mean * 0.05)) << mean;
  }
}

TEST(RngTest, PoissonNeverNegative) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Poisson(100.0), 0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_GT(s.min(), 0.0);
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(15);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(RngTest, WeightedIndexZeroTotalFallsBackToUniform) {
  Rng rng(16);
  const std::vector<double> weights{0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  for (int c : counts) EXPECT_GT(c, 1500);
}

// Regression: a NaN weight made the total NaN, `total <= 0.0` was false,
// and the linear scan fell off the end returning the LAST index every call
// — a diverged softmax actor silently became an always-last-action
// (always-charge) policy. Non-finite weights must abort instead.
TEST(RngDeathTest, WeightedIndexRejectsNanWeights) {
  Rng rng(18);
  const std::vector<double> weights{
      0.5, std::numeric_limits<double>::quiet_NaN(), 0.25};
  EXPECT_DEATH(rng.WeightedIndex(weights), "non-finite total weight");
}

TEST(RngDeathTest, WeightedIndexRejectsInfiniteWeights) {
  Rng rng(19);
  const std::vector<double> weights{
      0.5, std::numeric_limits<double>::infinity()};
  EXPECT_DEATH(rng.WeightedIndex(weights), "non-finite total weight");
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.Fork();
  // Child should differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class RngDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngDeterminism, FullDistributionStackIsReproducible) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
    EXPECT_EQ(a.Poisson(4.0), b.Poisson(4.0));
    EXPECT_DOUBLE_EQ(a.Exponential(1.0), b.Exponential(1.0));
    EXPECT_EQ(a.NextBounded(97), b.NextBounded(97));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDeterminism,
                         ::testing::Values(0, 1, 42, 20130, 0xFFFFFFFFFFULL));

}  // namespace
}  // namespace fairmove

using fairmove::DeriveSeed;
using fairmove::SplitMix64;

TEST(DeriveSeedTest, SplitMix64MatchesReferenceVectors) {
  // First outputs of the canonical splitmix64 stream seeded with 0 and 1
  // (Vigna's reference implementation). Pins the finalizer bit-for-bit.
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(1), 0x910a2dec89025cc1ULL);
}

TEST(DeriveSeedTest, PinnedValues) {
  // Regression pins: these exact streams are what RepeatConfig derives the
  // per-repeat experiment seeds from. Changing any of them silently changes
  // every published repeated-comparison number, so a change here must be
  // deliberate.
  EXPECT_EQ(DeriveSeed(42, 0x73696d, 0), 0x16076ce4ec094afdULL);
  EXPECT_EQ(DeriveSeed(42, 0x73696d, 1), 0xb9d40ef76c172ba2ULL);
  EXPECT_EQ(DeriveSeed(42, 0x63697479, 0), 0x14bd804e4d5493c4ULL);
  EXPECT_EQ(DeriveSeed(7, 0x6576616c, 3), 0x8b9ac8b2f36f34daULL);
}

TEST(DeriveSeedTest, DecorrelatesNamespacesAndIndices) {
  // The old `seed + repeat` shift made adjacent repeats and co-located
  // namespaces near-identical; derived seeds must differ pairwise and show
  // no low-bit striping.
  std::vector<uint64_t> seen;
  for (uint64_t ns : {0x73696dULL, 0x63697479ULL, 0x747261696eULL}) {
    for (uint64_t idx = 0; idx < 8; ++idx) {
      seen.push_back(DeriveSeed(1000, ns, idx));
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    for (size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]) << i << " vs " << j;
    }
  }
  // Adjacent indices must differ in many bits, not just the low ones.
  for (uint64_t idx = 0; idx + 1 < 8; ++idx) {
    const uint64_t diff =
        DeriveSeed(1000, 0x73696d, idx) ^ DeriveSeed(1000, 0x73696d, idx + 1);
    int bits = 0;
    for (uint64_t d = diff; d != 0; d &= d - 1) ++bits;
    EXPECT_GE(bits, 16) << "idx " << idx;
  }
}
