// Tests of the dataset-substitution layer (Table I records, generator) and
// the §II-C data-driven analysis functions.

#include <gtest/gtest.h>

#include "fairmove/core/fairmove.h"
#include "fairmove/data/analysis.h"
#include "fairmove/data/generator.h"
#include "fairmove/data/records.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

class DataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
    GtPolicy policy;
    system_->sim().RunDays(&policy, 1);
  }
  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(DataTest, TransactionsMatchTripRecords) {
  DatasetGenerator generator(&system_->sim(), 5);
  const auto transactions = generator.GenerateTransactions();
  const auto& trips = system_->sim().trace().trips();
  ASSERT_EQ(transactions.size(), trips.size());
  for (size_t i = 0; i < transactions.size(); ++i) {
    EXPECT_EQ(transactions[i].vehicle_id, trips[i].taxi);
    EXPECT_FLOAT_EQ(transactions[i].fare_cny, trips[i].fare_cny);
    EXPECT_FLOAT_EQ(transactions[i].operating_km, trips[i].distance_km);
    EXPECT_LT(transactions[i].pickup_time_s, transactions[i].dropoff_time_s);
    EXPECT_GE(transactions[i].cruising_km, 0.0f);
  }
}

TEST_F(DataTest, TransactionCoordinatesLookLikeShenzhen) {
  DatasetGenerator generator(&system_->sim(), 5);
  const auto transactions = generator.GenerateTransactions();
  ASSERT_FALSE(transactions.empty());
  for (const auto& t : transactions) {
    EXPECT_GT(t.pickup.lat, 21.5);
    EXPECT_LT(t.pickup.lat, 23.5);
    EXPECT_GT(t.pickup.lng, 113.0);
    EXPECT_LT(t.pickup.lng, 115.5);
  }
}

TEST_F(DataTest, GpsStreamInterpolatesTrips) {
  DatasetGenerator generator(&system_->sim(), 5);
  const auto gps = generator.GenerateGps(/*interval_s=*/60, 20000);
  ASSERT_FALSE(gps.empty());
  EXPECT_LE(gps.size(), 20000u);
  for (const auto& rec : gps) {
    EXPECT_TRUE(rec.occupied);
    EXPECT_GE(rec.speed_kmh, 0.0f);
    EXPECT_LT(rec.speed_kmh, 150.0f);
    EXPECT_GE(rec.heading_deg, 0.0f);
    EXPECT_LT(rec.heading_deg, 360.0f);
  }
  // Timestamps per vehicle within a trip are non-decreasing overall order.
  EXPECT_GE(gps[1].timestamp_s, gps[0].timestamp_s - 86400);
}

TEST_F(DataTest, StationAndRegionRecordsMatchCity) {
  DatasetGenerator generator(&system_->sim(), 5);
  const auto stations = generator.GenerateStations();
  EXPECT_EQ(static_cast<int>(stations.size()),
            system_->city().num_stations());
  int points = 0;
  for (const auto& s : stations) points += s.num_fast_points;
  EXPECT_EQ(points, system_->city().total_charge_points());

  const auto regions = generator.GenerateRegions();
  EXPECT_EQ(static_cast<int>(regions.size()), system_->city().num_regions());
  for (const auto& r : regions) {
    EXPECT_EQ(r.boundary.size(), 4u);
    EXPECT_FALSE(r.land_use.empty());
  }
}

TEST_F(DataTest, RecordTablesHaveTableIColumns) {
  DatasetGenerator generator(&system_->sim(), 5);
  const Table gps = GpsRecordsTable(generator.GenerateGps(300, 100));
  EXPECT_EQ(gps.header()[0], "vehicle_id");
  const Table tx = TransactionRecordsTable(generator.GenerateTransactions());
  EXPECT_EQ(tx.num_cols(), 10u);
  const Table st = StationRecordsTable(generator.GenerateStations());
  EXPECT_EQ(st.num_rows(), static_cast<size_t>(system_->city().num_stations()));
  const Table rg = RegionRecordsTable(generator.GenerateRegions());
  EXPECT_EQ(rg.num_rows(), static_cast<size_t>(system_->city().num_regions()));
}

// ---------------------------------------------------------------- Analysis --

TEST_F(DataTest, PerTripRevenueByRegionIsNonNegative) {
  const auto revenue = PerTripRevenueByRegion(system_->sim(), 8, 9);
  EXPECT_EQ(static_cast<int>(revenue.size()), system_->city().num_regions());
  for (double v : revenue) EXPECT_GE(v, 0.0);
}

TEST_F(DataTest, AirportTripsEarnMoreThanDowntownTrips) {
  // Finding (iv): the airport's per-trip revenue dwarfs downtown's.
  const auto revenue = PerTripRevenueByRegion(system_->sim(), 0, 24);
  double airport = 0.0;
  double downtown_sum = 0.0;
  int downtown_n = 0;
  for (const Region& region : system_->city().regions()) {
    if (region.cls == RegionClass::kAirport) {
      airport = revenue[static_cast<size_t>(region.id)];
    } else if (region.cls == RegionClass::kDowntownCore &&
               revenue[static_cast<size_t>(region.id)] > 0.0) {
      downtown_sum += revenue[static_cast<size_t>(region.id)];
      ++downtown_n;
    }
  }
  ASSERT_GT(downtown_n, 0);
  // At bench scale the city is small, so the airport's distance premium is
  // compressed; it must still clearly beat the downtown average.
  EXPECT_GT(airport, downtown_sum / downtown_n);
}

TEST_F(DataTest, ChargeDurationSampleMatchesTrace) {
  const Sample durations = ChargeDurationSample(system_->sim());
  EXPECT_EQ(durations.size(),
            system_->sim().trace().charge_events().size());
  if (!durations.empty()) {
    EXPECT_GT(durations.Median(), 10.0);
    EXPECT_LT(durations.Median(), 180.0);
  }
}

TEST_F(DataTest, ChargeStartSharesSumToOne) {
  const auto shares = ChargeStartShareByHour(system_->sim());
  double total = 0.0;
  for (double s : shares) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(DataTest, FirstCruiseSampleOnlyBackfilledEvents) {
  const Sample first = FirstCruiseSample(system_->sim());
  for (double v : first.values()) EXPECT_GE(v, 0.0);
  // Some charge events near the end of the run never see a next pickup.
  EXPECT_LE(first.size(), system_->sim().trace().charge_events().size());
}

TEST_F(DataTest, FirstCruiseByStationFiltersSmallSamples) {
  const auto by_station = FirstCruiseByStation(system_->sim(), 5);
  for (const auto& [station, sample] : by_station) {
    EXPECT_GE(station, 0);
    EXPECT_LT(station, system_->city().num_stations());
    EXPECT_GE(sample.size(), 5u);
  }
}

TEST_F(DataTest, PeStatisticsPlausible) {
  const Sample pe = HourlyPeSample(system_->sim());
  EXPECT_EQ(pe.size(), static_cast<size_t>(system_->sim().num_taxis()));
  EXPECT_GT(pe.Median(), 20.0);
  EXPECT_LT(pe.Median(), 80.0);
  EXPECT_GT(PeP80OverP20Gap(system_->sim()), 0.0);
}

}  // namespace
}  // namespace fairmove
