// Tests of the fault-injection & resilience subsystem: FaultSchedule
// validation and CSV round-trip, bit-exact deterministic replay of chaos
// episodes, graceful degradation under every shipped policy, the
// DivergenceGuard checkpoint-rollback machinery, the hardened Adam step,
// and the record-corruption chaos helper.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "fairmove/common/csv.h"
#include "fairmove/core/evaluator.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/metrics.h"
#include "fairmove/nn/adam.h"
#include "fairmove/nn/mlp.h"
#include "fairmove/resilience/chaos.h"
#include "fairmove/resilience/divergence_guard.h"
#include "fairmove/resilience/fault_schedule.h"
#include "fairmove/rl/cma2c_policy.h"
#include "fairmove/rl/features.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------- FaultSchedule --

TEST(FaultScheduleTest, ValidateAcceptsReasonableSchedule) {
  FaultSchedule schedule;
  schedule.AddStationOutage(0, 10, 20)
      .AddStationOutage(1, 10, 20, 0.5)
      .AddDemandShock(DemandShock::kAllRegions, 0, 144, 2.0)
      .AddDemandShock(3, 12, 24, 0.0)
      .AddBreakdownHazard(0, 144, 0.01, 6);
  EXPECT_TRUE(schedule.Validate().ok());
  EXPECT_FALSE(schedule.empty());
  EXPECT_TRUE(FaultSchedule().Validate().ok());
  EXPECT_TRUE(FaultSchedule().empty());
}

TEST(FaultScheduleTest, ValidateRejectsBadEntries) {
  EXPECT_FALSE(FaultSchedule().AddStationOutage(0, 20, 10).Validate().ok());
  EXPECT_FALSE(FaultSchedule().AddStationOutage(0, -1, 10).Validate().ok());
  EXPECT_FALSE(
      FaultSchedule().AddStationOutage(0, 0, 10, 1.5).Validate().ok());
  EXPECT_FALSE(
      FaultSchedule().AddStationOutage(0, 0, 10, -0.1).Validate().ok());
  EXPECT_FALSE(
      FaultSchedule().AddStationOutage(0, 0, 10, kNan).Validate().ok());
  EXPECT_FALSE(FaultSchedule().AddDemandShock(0, 0, 10, -2.0).Validate().ok());
  EXPECT_FALSE(FaultSchedule().AddDemandShock(0, 0, 10, kNan).Validate().ok());
  EXPECT_FALSE(FaultSchedule().AddDemandShock(-5, 0, 10, 1.0).Validate().ok());
  EXPECT_FALSE(
      FaultSchedule().AddBreakdownHazard(0, 10, 1.5, 6).Validate().ok());
  EXPECT_FALSE(
      FaultSchedule().AddBreakdownHazard(0, 10, 0.1, 0).Validate().ok());
}

TEST(FaultScheduleTest, ValidateForChecksIdsAgainstCitySize) {
  FaultSchedule schedule;
  schedule.AddStationOutage(4, 0, 10).AddDemandShock(7, 0, 10, 2.0);
  EXPECT_TRUE(schedule.ValidateFor(/*num_regions=*/8, /*num_stations=*/5).ok());
  EXPECT_FALSE(schedule.ValidateFor(8, 4).ok());  // station 4 out of range
  EXPECT_FALSE(schedule.ValidateFor(7, 5).ok());  // region 7 out of range
  FaultSchedule fleet_wide;
  fleet_wide.AddDemandShock(DemandShock::kAllRegions, 0, 10, 2.0);
  EXPECT_TRUE(fleet_wide.ValidateFor(1, 1).ok());
}

TEST(FaultScheduleTest, QueriesComposeOverlappingWindows) {
  FaultSchedule schedule;
  schedule.AddStationOutage(2, 10, 30, 0.5)
      .AddStationOutage(2, 20, 40, 0.5)
      .AddDemandShock(DemandShock::kAllRegions, 0, 100, 2.0)
      .AddDemandShock(5, 50, 60, 3.0)
      .AddBreakdownHazard(70, 80, 0.2, 3);
  EXPECT_DOUBLE_EQ(schedule.StationCapacityFactor(2, 9), 1.0);
  EXPECT_DOUBLE_EQ(schedule.StationCapacityFactor(2, 15), 0.5);
  EXPECT_DOUBLE_EQ(schedule.StationCapacityFactor(2, 25), 0.25);  // overlap
  EXPECT_DOUBLE_EQ(schedule.StationCapacityFactor(2, 35), 0.5);
  EXPECT_DOUBLE_EQ(schedule.StationCapacityFactor(2, 40), 1.0);  // exclusive
  EXPECT_DOUBLE_EQ(schedule.StationCapacityFactor(1, 25), 1.0);  // other id
  EXPECT_DOUBLE_EQ(schedule.DemandMultiplier(0, 10), 2.0);
  EXPECT_DOUBLE_EQ(schedule.DemandMultiplier(5, 55), 6.0);  // fleet x region
  EXPECT_DOUBLE_EQ(schedule.DemandMultiplier(5, 65), 2.0);
  EXPECT_DOUBLE_EQ(schedule.DemandMultiplier(5, 100), 1.0);
  EXPECT_FALSE(schedule.HazardActive(69));
  EXPECT_TRUE(schedule.HazardActive(70));
  EXPECT_TRUE(schedule.HazardActive(79));
  EXPECT_FALSE(schedule.HazardActive(80));
}

TEST(FaultScheduleTest, CsvRoundTrip) {
  FaultSchedule schedule;
  schedule.AddStationOutage(3, 36, 72, 0.0)
      .AddStationOutage(1, 40, 50, 0.25)
      .AddDemandShock(DemandShock::kAllRegions, 36, 108, 2.0)
      .AddDemandShock(9, 60, 66, 0.5)
      .AddBreakdownHazard(36, 72, 0.01, 6);
  auto parsed_or = FaultSchedule::FromCsv(schedule.ToCsv());
  ASSERT_TRUE(parsed_or.ok()) << parsed_or.status();
  const FaultSchedule& parsed = parsed_or.value();
  ASSERT_EQ(parsed.station_outages().size(), 2u);
  ASSERT_EQ(parsed.demand_shocks().size(), 2u);
  ASSERT_EQ(parsed.breakdown_hazards().size(), 1u);
  EXPECT_EQ(parsed.station_outages()[0].station, 3);
  EXPECT_EQ(parsed.station_outages()[0].from_slot, 36);
  EXPECT_EQ(parsed.station_outages()[0].until_slot, 72);
  EXPECT_DOUBLE_EQ(parsed.station_outages()[1].capacity_factor, 0.25);
  EXPECT_EQ(parsed.demand_shocks()[0].region, DemandShock::kAllRegions);
  EXPECT_DOUBLE_EQ(parsed.demand_shocks()[1].multiplier, 0.5);
  EXPECT_EQ(parsed.breakdown_hazards()[0].repair_slots, 6);
  EXPECT_DOUBLE_EQ(parsed.breakdown_hazards()[0].per_slot_prob, 0.01);
}

TEST(FaultScheduleTest, FromCsvRejectsGarbage) {
  EXPECT_FALSE(FaultSchedule::FromCsv("").ok());
  EXPECT_FALSE(FaultSchedule::FromCsv("wrong,header\n1,2\n").ok());
  EXPECT_FALSE(
      FaultSchedule::FromCsv("kind,target,from_slot,until_slot,magnitude,"
                             "param\nearthquake,0,0,10,1.0,0\n")
          .ok());
  EXPECT_FALSE(
      FaultSchedule::FromCsv("kind,target,from_slot,until_slot,magnitude,"
                             "param\nstation_outage,zero,0,10,0.0,0\n")
          .ok());
  // Parses but fails Validate (inverted window).
  EXPECT_FALSE(
      FaultSchedule::FromCsv("kind,target,from_slot,until_slot,magnitude,"
                             "param\nstation_outage,0,20,10,0.0,0\n")
          .ok());
}

TEST(FaultScheduleTest, StandardOutageScenarioIsValidForItsCity) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  const FaultSchedule schedule = StandardOutageScenario(system->city());
  EXPECT_TRUE(schedule
                  .ValidateFor(system->city().num_regions(),
                               system->city().num_stations())
                  .ok());
  EXPECT_EQ(schedule.station_outages().size(), 2u);
  EXPECT_EQ(schedule.demand_shocks().size(), 1u);
  EXPECT_EQ(schedule.breakdown_hazards().size(), 1u);
  // The darked stations are the two biggest ones.
  int max_points = 0;
  for (StationId s = 0; s < system->city().num_stations(); ++s) {
    max_points = std::max(max_points, system->city().station(s).num_points);
  }
  EXPECT_EQ(system->city()
                .station(schedule.station_outages()[0].station)
                .num_points,
            max_points);
}

// ----------------------------------------------- Deterministic chaos runs --

/// Byte-comparable digest of everything a run produced: trace aggregates,
/// the fault-event log, and the final per-taxi state.
std::string Fingerprint(const Simulator& sim, bool include_fault_events) {
  std::ostringstream os;
  os.precision(17);
  const Trace& t = sim.trace();
  os << t.total_trips() << '|' << t.total_charge_events() << '|'
     << t.total_fares() << '|' << t.total_charge_cost() << '|'
     << t.expired_requests() << '|' << t.total_breakdowns() << '|'
     << sim.total_requests() << '|' << sim.FleetMeanPe() << '|'
     << sim.FleetPeVariance() << '\n';
  if (include_fault_events) {
    os << t.total_fault_events() << '\n';
    for (const FaultEvent& e : t.fault_events()) {
      os << static_cast<int>(e.kind) << ',' << e.slot << ',' << e.subject
         << ',' << e.magnitude << '\n';
    }
  }
  const FleetState& fleet = sim.fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    const size_t k = static_cast<size_t>(id);
    os << fleet.region[k] << ',' << static_cast<int>(fleet.phase[k]) << ','
       << fleet.soc[k] << ',' << fleet.revenue_cny[k] << ','
       << fleet.charge_cost_cny[k] << ',' << fleet.cold[k].num_trips << ','
       << fleet.cold[k].num_charges << ',' << fleet.cold[k].num_breakdowns
       << '\n';
  }
  return os.str();
}

class ResilienceSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
  }

  std::string RunOnce(const FaultSchedule* schedule, uint64_t seed,
                      int64_t slots, bool include_fault_events = true) {
    Simulator& sim = system_->sim();
    EXPECT_TRUE(sim.SetFaultSchedule(schedule).ok());
    sim.Reset(seed);
    GtPolicy policy;
    sim.RunSlots(&policy, slots);
    std::string fp = Fingerprint(sim, include_fault_events);
    EXPECT_TRUE(sim.SetFaultSchedule(nullptr).ok());
    return fp;
  }

  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(ResilienceSimTest, SameSeedSameScheduleReplaysBitForBit) {
  const FaultSchedule schedule = StandardOutageScenario(system_->city(), 12);
  const std::string a = RunOnce(&schedule, 321, 144);
  const std::string b = RunOnce(&schedule, 321, 144);
  EXPECT_EQ(a, b);
}

TEST_F(ResilienceSimTest, EmptyScheduleMatchesNoScheduleBitForBit) {
  const FaultSchedule empty;
  const std::string without = RunOnce(nullptr, 321, 144);
  const std::string with_empty = RunOnce(&empty, 321, 144);
  EXPECT_EQ(without, with_empty);
}

TEST_F(ResilienceSimTest, ExtraOutageDivergesTheDynamics) {
  FaultSchedule base = StandardOutageScenario(system_->city(), 12);
  FaultSchedule more = base;
  // Dark every station for the whole run on top of the standard scenario:
  // charging becomes impossible, so the fleets must evolve differently.
  for (StationId s = 0; s < system_->city().num_stations(); ++s) {
    more.AddStationOutage(s, 0, 400, 0.0);
  }
  // Compare only the taxi-state digest so the divergence is in the actual
  // dynamics, not merely in the longer fault-event log.
  const std::string a = RunOnce(&base, 321, 144, /*include_fault_events=*/false);
  const std::string b = RunOnce(&more, 321, 144, /*include_fault_events=*/false);
  EXPECT_NE(a, b);
}

TEST_F(ResilienceSimTest, ScheduleSurvivesResetAndIsValidatedOnInstall) {
  Simulator& sim = system_->sim();
  FaultSchedule bad;
  bad.AddStationOutage(system_->city().num_stations(), 0, 10);
  EXPECT_FALSE(sim.SetFaultSchedule(&bad).ok());
  EXPECT_EQ(sim.fault_schedule(), nullptr);

  const FaultSchedule good = StandardOutageScenario(system_->city(), 12);
  ASSERT_TRUE(sim.SetFaultSchedule(&good).ok());
  sim.Reset(99);
  EXPECT_EQ(sim.fault_schedule(), &good);
  ASSERT_TRUE(sim.SetFaultSchedule(nullptr).ok());
}

TEST_F(ResilienceSimTest, DarkStationHoldsNoSessionsAndLogsTheOutage) {
  FaultSchedule schedule;
  schedule.AddStationOutage(0, 0, 400, 0.0);
  Simulator& sim = system_->sim();
  ASSERT_TRUE(sim.SetFaultSchedule(&schedule).ok());
  sim.Reset(17);
  GtPolicy policy;
  sim.RunSlots(&policy, 144);
  EXPECT_EQ(sim.station_queue(0).available_points(), 0);
  EXPECT_EQ(sim.station_queue(0).occupied(), 0);
  bool logged = false;
  for (const FaultEvent& e : sim.trace().fault_events()) {
    if (e.kind == FaultKind::kStationOutage && e.subject == 0) logged = true;
  }
  EXPECT_TRUE(logged);
  ASSERT_TRUE(sim.SetFaultSchedule(nullptr).ok());
}

TEST_F(ResilienceSimTest, FullDerateKeepsStationFeaturesFiniteAndSaturated) {
  // Regression test for the station-feature normalisation under fault
  // derating: pre-fix, the two queue-state features were normalised by the
  // INSTALLED point count, so a station darked by a FaultSchedule outage
  // (zero usable points — the "division by zero charging points" case once
  // any derate-aware denominator is used) still advertised a calm, empty
  // queue. Post-fix, the denominator is the derated available_points() and
  // a dark station renders as the documented "infinitely long queue": free
  // share 0, queue share saturated at 1, travel time still real.
  FaultSchedule schedule;
  const int num_stations = system_->city().num_stations();
  for (StationId s = 0; s < num_stations; ++s) {
    schedule.AddStationOutage(s, 0, 400, 0.0);  // every station dark
  }
  Simulator& sim = system_->sim();
  ASSERT_TRUE(sim.SetFaultSchedule(&schedule).ok());
  sim.Reset(23);
  GtPolicy policy;
  sim.RunSlots(&policy, 6);  // outage windows applied, queues drained
  ASSERT_EQ(sim.station_queue(0).available_points(), 0);

  FeatureExtractor features(&sim);
  // The station block sits between the neighbourhood aggregates and the
  // two price + two fairness tail features; locate it from the tail so the
  // test does not depend on the head-of-row layout.
  const int station_block =
      features.dim() - 4 - City::kNearestStations * 3;
  ASSERT_GT(station_block, 0);
  std::vector<float> out;
  for (RegionId r = 0; r < system_->city().num_regions(); ++r) {
    TaxiObs obs;
    obs.taxi = 0;
    obs.region = r;
    obs.soc = 0.4;
    features.Extract(obs, &out);
    for (int i = 0; i < features.dim(); ++i) {
      ASSERT_TRUE(std::isfinite(out[static_cast<size_t>(i)]))
          << "feature " << i << " of region " << r << " is non-finite";
    }
    const auto& near = system_->city().NearestStations(r);
    for (int j = 0; j < static_cast<int>(near.size()); ++j) {
      const float* f =
          out.data() + static_cast<size_t>(station_block + 3 * j);
      EXPECT_EQ(f[0], 0.0f) << "free share, region " << r << " slot " << j;
      EXPECT_EQ(f[1], 1.0f) << "queue share, region " << r << " slot " << j;
    }
  }
  ASSERT_TRUE(sim.SetFaultSchedule(nullptr).ok());
}

TEST_F(ResilienceSimTest, BreakdownsAreAccountedAndTaxisRejoin) {
  FaultSchedule schedule;
  schedule.AddBreakdownHazard(6, 18, 0.2, 3);
  Simulator& sim = system_->sim();
  ASSERT_TRUE(sim.SetFaultSchedule(&schedule).ok());
  sim.Reset(5);
  GtPolicy policy;
  sim.RunSlots(&policy, 60);  // hazard long over, repairs complete
  const Trace& trace = sim.trace();
  ASSERT_GT(trace.total_breakdowns(), 0);
  int64_t breakdown_events = 0;
  int64_t repaired_events = 0;
  for (const FaultEvent& e : trace.fault_events()) {
    if (e.kind == FaultKind::kBreakdown) ++breakdown_events;
    if (e.kind == FaultKind::kRepaired) ++repaired_events;
  }
  EXPECT_EQ(breakdown_events, trace.total_breakdowns());
  EXPECT_EQ(repaired_events, breakdown_events);
  int64_t per_taxi = 0;
  const FleetState& fleet = sim.fleet();
  for (TaxiId id = 0; id < fleet.size(); ++id) {
    per_taxi += fleet.cold[static_cast<size_t>(id)].num_breakdowns;
    EXPECT_NE(fleet.phase[static_cast<size_t>(id)], TaxiPhase::kBrokenDown);
  }
  EXPECT_EQ(per_taxi, trace.total_breakdowns());
  const FleetMetrics m = ComputeFleetMetrics(sim);
  EXPECT_EQ(m.breakdowns, trace.total_breakdowns());
  EXPECT_GT(m.fault_events, 0);
  ASSERT_TRUE(sim.SetFaultSchedule(nullptr).ok());
}

TEST_F(ResilienceSimTest, ChaosEpisodeCompletesUnderEveryShippedPolicy) {
  const FaultSchedule schedule = StandardOutageScenario(system_->city(), 36);
  Simulator& sim = system_->sim();
  std::vector<PolicyKind> kinds = FairMoveSystem::AllMethods();
  kinds.push_back(PolicyKind::kFairCharge);
  for (const PolicyKind kind : kinds) {
    ASSERT_TRUE(sim.SetFaultSchedule(&schedule).ok());
    sim.Reset(1234);
    auto policy = MakePolicy(kind, sim, 99);
    policy->SetTraining(false);
    sim.RunSlots(policy.get(), 144);
    const FleetMetrics m = ComputeFleetMetrics(sim);
    EXPECT_TRUE(std::isfinite(m.pe.Mean())) << policy->name();
    EXPECT_TRUE(std::isfinite(m.pf)) << policy->name();
    // 2 outages + 2 restorations + shock begin/end at minimum.
    EXPECT_GE(m.fault_events, 6) << policy->name();
    EXPECT_GT(m.trips, 0) << policy->name();
    ASSERT_TRUE(sim.SetFaultSchedule(nullptr).ok());
  }
}

// -------------------------------------------------------- DivergenceGuard --

TEST(DivergenceGuardTest, RollbackRestoresCheckpointedWeightsExactly) {
  Mlp net({3, 8, 2}, Activation::kTanh, 11);
  const std::vector<float> x{0.3f, -0.7f, 1.1f};
  DivergenceGuard guard;
  guard.Register(&net);
  ASSERT_TRUE(guard.Checkpoint().ok());
  ASSERT_TRUE(guard.has_checkpoint());
  const std::vector<float> y0 = net.Forward1(x);
  EXPECT_TRUE(guard.ParametersFinite());

  net.weights()[0].At(0, 0) = std::numeric_limits<float>::quiet_NaN();
  net.biases()[1][0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(guard.ParametersFinite());

  ASSERT_TRUE(guard.OnDivergence("rigged NaN").ok());
  EXPECT_TRUE(guard.ParametersFinite());
  EXPECT_EQ(net.Forward1(x), y0);  // bit-exact restore
  EXPECT_EQ(guard.consecutive_rollbacks(), 1);
  EXPECT_EQ(guard.total_rollbacks(), 1);
  EXPECT_DOUBLE_EQ(guard.lr_scale(), 0.5);
  EXPECT_TRUE(guard.status().ok());
}

TEST(DivergenceGuardTest, HealthyUpdateResetsTheBudget) {
  Mlp net({2, 2}, Activation::kRelu, 3);
  DivergenceGuard guard(DivergenceGuard::Options{.max_consecutive_rollbacks = 2,
                                                 .lr_decay = 0.1});
  guard.Register(&net);
  ASSERT_TRUE(guard.Checkpoint().ok());
  ASSERT_TRUE(guard.OnDivergence("one").ok());
  ASSERT_TRUE(guard.NoteHealthyUpdate().ok());
  EXPECT_EQ(guard.consecutive_rollbacks(), 0);
  ASSERT_TRUE(guard.OnDivergence("two").ok());
  EXPECT_TRUE(guard.status().ok());  // 1 < budget of 2 again
  EXPECT_EQ(guard.total_rollbacks(), 2);
  EXPECT_DOUBLE_EQ(guard.lr_scale(), 0.01);
}

TEST(DivergenceGuardTest, GivesUpWithDescriptiveStatusAfterBudget) {
  Mlp net({2, 2}, Activation::kRelu, 3);
  DivergenceGuard guard(DivergenceGuard::Options{.max_consecutive_rollbacks = 2,
                                                 .lr_decay = 0.5});
  guard.Register(&net);
  ASSERT_TRUE(guard.Checkpoint().ok());
  ASSERT_TRUE(guard.OnDivergence("first blow-up").ok());
  EXPECT_FALSE(guard.exhausted());
  ASSERT_TRUE(guard.OnDivergence("final blow-up").ok());
  EXPECT_TRUE(guard.exhausted());
  EXPECT_FALSE(guard.status().ok());
  EXPECT_NE(guard.status().message().find("final blow-up"), std::string::npos);
  EXPECT_NE(guard.status().message().find("diverged"), std::string::npos);
}

TEST(DivergenceGuardTest, RollbackWithoutCheckpointFails) {
  Mlp net({2, 2}, Activation::kRelu, 3);
  DivergenceGuard guard;
  guard.Register(&net);
  EXPECT_FALSE(guard.OnDivergence("no checkpoint yet").ok());
  // Registering another net invalidates an existing snapshot set.
  Mlp other({2, 2}, Activation::kRelu, 4);
  ASSERT_TRUE(guard.Checkpoint().ok());
  guard.Register(&other);
  EXPECT_FALSE(guard.OnDivergence("stale checkpoint").ok());
}

// ------------------------------------------------------------ Adam guard --

TEST(AdamResilienceTest, NonFiniteGradientsSkipTheStep) {
  Mlp net({2, 3}, Activation::kRelu, 7);
  const std::vector<float> x{1.0f, -1.0f};
  Adam opt(&net, Adam::Options{});
  const std::vector<float> y0 = net.Forward1(x);

  Mlp::Gradients grads = net.MakeGradients();
  grads.dw[0].At(0, 0) = std::numeric_limits<float>::quiet_NaN();
  opt.Step(grads);
  EXPECT_EQ(opt.skipped_steps(), 1);
  EXPECT_EQ(opt.steps(), 0);
  EXPECT_EQ(net.Forward1(x), y0);  // parameters untouched

  grads.Zero();
  grads.dw[0].At(0, 0) = 0.25f;
  opt.Step(grads);
  EXPECT_EQ(opt.steps(), 1);
  EXPECT_NE(net.Forward1(x), y0);
}

// ------------------------------------------------- CMA2C rigged-NaN loss --

TEST(Cma2cDivergenceTest, RiggedNanRewardRollsBackThenGivesUpCleanly) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Cma2cPolicy::Options opt;
  opt.actor_hidden = {8};
  opt.critic_hidden = {8};
  opt.batch_size = 4;
  opt.actor_warmup_batches = 0;
  Cma2cPolicy policy(system->sim(), opt);
  policy.EnableDivergenceGuard();
  ASSERT_NE(policy.divergence_guard(), nullptr);

  // One live step to obtain genuine feature vectors.
  system->sim().Reset();
  policy.SetTraining(true);
  system->sim().Step(&policy);
  ASSERT_FALSE(policy.LastFeatures()->empty());
  const std::vector<float> state = policy.LastFeatures()->front();
  const double v0 = policy.Value(state);

  DisplacementPolicy::Transition t;
  t.state = state;
  t.action_index = 0;
  t.reward = kNan;  // poisons the TD target
  t.terminal = true;
  t.region = 0;
  const std::vector<DisplacementPolicy::Transition> batch(4, t);

  policy.Update(batch);
  EXPECT_EQ(policy.divergence_guard()->total_rollbacks(), 1);
  EXPECT_TRUE(policy.Health().ok());
  // The rollback fires before any optimizer step, so the critic still
  // equals the checkpoint exactly.
  EXPECT_EQ(policy.Value(state), v0);

  policy.Update(batch);
  policy.Update(batch);  // third consecutive rollback: budget spent
  EXPECT_TRUE(policy.divergence_guard()->exhausted());
  const Status health = policy.Health();
  EXPECT_FALSE(health.ok());
  EXPECT_NE(health.message().find("diverged"), std::string::npos);
  EXPECT_EQ(policy.Value(state), v0);

  // Learn() is now a no-op: no further rollbacks, no crash.
  std::vector<DisplacementPolicy::Transition> more(8, t);
  policy.Learn(more);
  EXPECT_EQ(policy.divergence_guard()->total_rollbacks(), 3);
}

// ----------------------------------------------------- Trainer guard rail --

/// Heuristic stand-in whose Health() turns non-OK after the first Learn().
class SickPolicy : public DisplacementPolicy {
 public:
  std::string name() const override { return "sick"; }
  void DecideActions(const Simulator& sim, const std::vector<TaxiObs>& vacant,
                     std::vector<Action>* actions) override {
    actions->clear();
    for (const TaxiObs& obs : vacant) {
      if (obs.must_charge) {
        actions->push_back(
            Action::Charge(sim.city().NearestStations(obs.region).front()));
      } else {
        actions->push_back(Action::Stay());
      }
    }
  }
  bool WantsTransitions() const override { return true; }
  void Learn(const std::vector<Transition>&) override { sick_ = true; }
  Status Health() const override {
    return sick_ ? Status::Internal("synthetic divergence") : Status::OK();
  }

 private:
  bool sick_ = false;
};

TEST(TrainGuardedTest, StopsWithDescriptiveStatusOnUnhealthyPolicy) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 3;
  cfg.trainer.slots_per_episode = 24;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Trainer trainer = system->MakeTrainer();
  SickPolicy policy;
  std::vector<Trainer::EpisodeStats> stats;
  const Status st = trainer.TrainGuarded(&policy, &stats);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("episode 1"), std::string::npos);
  EXPECT_NE(st.message().find("synthetic divergence"), std::string::npos);
  EXPECT_EQ(stats.size(), 1u);  // stopped after the first episode
}

TEST(TrainGuardedTest, HealthyRunFinishesAllEpisodes) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 2;
  cfg.trainer.slots_per_episode = 24;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Trainer trainer = system->MakeTrainer();
  GtPolicy policy;
  std::vector<Trainer::EpisodeStats> stats;
  const Status st = trainer.TrainGuarded(&policy, &stats);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(stats.size(), 2u);
}

// --------------------------------------------------------- CorruptCsvText --

TEST(CorruptCsvTextTest, ValidateRejectsBadProbabilities) {
  RecordCorruption c;
  EXPECT_TRUE(c.Validate().ok());
  c.drop_prob = -0.1;
  EXPECT_FALSE(c.Validate().ok());
  c = RecordCorruption{};
  c.nul_prob = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c = RecordCorruption{};
  c.truncate_prob = kNan;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CorruptCsvTextTest, ZeroProbabilitiesAreTheIdentity) {
  const std::string text = "a,b\n1,2\n3,4\n";
  CorruptionStats stats;
  EXPECT_EQ(CorruptCsvText(text, RecordCorruption{}, &stats), text);
  EXPECT_EQ(stats.rows_seen, 2);
  EXPECT_EQ(stats.total_corrupted(), 0);
}

TEST(CorruptCsvTextTest, DeterministicForSeedAndHeaderIsNeverTouched) {
  std::string text = "h1,h2\n";
  for (int i = 0; i < 200; ++i) {
    text += std::to_string(i) + "," + std::to_string(i * 2) + "\n";
  }
  RecordCorruption c;
  c.drop_prob = 0.1;
  c.truncate_prob = 0.1;
  c.mangle_prob = 0.1;
  c.nul_prob = 0.1;
  c.seed = 42;
  CorruptionStats s1, s2;
  const std::string out1 = CorruptCsvText(text, c, &s1);
  const std::string out2 = CorruptCsvText(text, c, &s2);
  EXPECT_EQ(out1, out2);
  EXPECT_GT(s1.total_corrupted(), 0);
  EXPECT_EQ(s1.total_corrupted(), s2.total_corrupted());
  EXPECT_EQ(out1.substr(0, 6), "h1,h2\n");
  c.seed = 43;
  EXPECT_NE(CorruptCsvText(text, c, nullptr), out1);
}

TEST(CorruptCsvTextTest, DropOneRemovesEveryDataRow) {
  RecordCorruption c;
  c.drop_prob = 1.0;
  CorruptionStats stats;
  EXPECT_EQ(CorruptCsvText("a,b\n1,2\n3,4\n", c, &stats), "a,b\n");
  EXPECT_EQ(stats.dropped, 2);
}

TEST(CorruptCsvTextTest, NulOneDefeatsStrictParserButNotLenient) {
  RecordCorruption c;
  c.nul_prob = 1.0;
  c.seed = 9;
  CorruptionStats stats;
  const std::string corrupted =
      CorruptCsvText("a,b\n1,2\n3,4\n", c, &stats);
  EXPECT_EQ(stats.nul_injected, 2);
  EXPECT_FALSE(ParseCsv(corrupted).ok());
  CsvQuarantine q;
  auto lenient = ParseCsvLenient(corrupted, &q);
  ASSERT_TRUE(lenient.ok()) << lenient.status();
  EXPECT_EQ(lenient->num_rows(), 0u);
  EXPECT_EQ(q.nul_rows, 2);
}

}  // namespace
}  // namespace fairmove
