#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fairmove/common/csv.h"

namespace fairmove {
namespace {

TEST(TableTest, HeaderAndRows) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x", "y"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.row(1)[0], "x");
}

TEST(TableTest, CellByColumnName) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "0.6"});
  EXPECT_EQ(t.Cell(0, "value"), "0.6");
  EXPECT_EQ(t.Cell(0, "name"), "alpha");
}

TEST(TableTest, RowBuilderFormats) {
  Table t({"s", "n", "i", "p"});
  t.Row().Str("hi").Num(3.14159, 2).Int(42).Pct(0.256).Done();
  EXPECT_EQ(t.row(0)[0], "hi");
  EXPECT_EQ(t.row(0)[1], "3.14");
  EXPECT_EQ(t.row(0)[2], "42");
  EXPECT_EQ(t.row(0)[3], "25.6%");
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table t({"text"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  t.AddRow({"has\nnewline"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\nnewline\""), std::string::npos);
}

TEST(TableTest, AlignedTextContainsAllCells) {
  Table t({"method", "score"});
  t.AddRow({"FairMove", "25.2"});
  const std::string text = t.ToAlignedText();
  EXPECT_NE(text.find("method"), std::string::npos);
  EXPECT_NE(text.find("FairMove"), std::string::npos);
  EXPECT_NE(text.find("25.2"), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.AddRow({"x", "1"});
  const std::string path = ::testing::TempDir() + "/fairmove_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "k,v\nx,1\n");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvToBadPathFails) {
  Table t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent_dir_zz/file.csv").ok());
}

}  // namespace
}  // namespace fairmove
