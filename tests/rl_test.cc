// Tests of the RL layer: features, replay buffer, and every displacement
// policy's behavioural contract (valid actions, learning hooks, traits).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "fairmove/common/stats.h"
#include "fairmove/demand/demand_model.h"
#include "fairmove/geo/city_builder.h"
#include "fairmove/pricing/tou_tariff.h"
#include "fairmove/rl/cma2c_policy.h"
#include "fairmove/rl/dqn_policy.h"
#include "fairmove/rl/features.h"
#include "fairmove/rl/gt_policy.h"
#include "fairmove/rl/replay_buffer.h"
#include "fairmove/rl/sd2_policy.h"
#include "fairmove/rl/tba_policy.h"
#include "fairmove/rl/tql_policy.h"
#include "fairmove/sim/simulator.h"

namespace fairmove {
namespace {

struct TestStack {
  std::unique_ptr<City> city;
  std::unique_ptr<DemandModel> demand;
  std::unique_ptr<Simulator> sim;
};

TestStack MakeStack(int num_taxis = 250, uint64_t seed = 31) {
  TestStack stack;
  CityConfig city_cfg = CityConfig{}.Scaled(0.05);
  city_cfg.seed = seed;
  stack.city = std::make_unique<City>(
      std::move(CityBuilder(city_cfg).Build()).value());
  DemandConfig demand_cfg;
  demand_cfg.num_taxis = num_taxis;
  stack.demand = std::make_unique<DemandModel>(
      DemandModel::Create(stack.city.get(), demand_cfg).value());
  SimConfig sim_cfg;
  sim_cfg.num_taxis = num_taxis;
  sim_cfg.seed = seed;
  stack.sim = std::move(Simulator::Create(stack.city.get(),
                                          stack.demand.get(),
                                          TouTariff::Shenzhen(), sim_cfg))
                  .value();
  return stack;
}

// ------------------------------------------------------ FeatureExtractor --

TEST(FeatureExtractorTest, DimIsStableAndVectorsMatch) {
  TestStack stack = MakeStack();
  FeatureExtractor features(stack.sim.get());
  EXPECT_GT(features.dim(), 20);
  TaxiObs obs;
  obs.taxi = 0;
  obs.region = 0;
  obs.soc = 0.8;
  std::vector<float> out;
  features.Extract(obs, &out);
  EXPECT_EQ(static_cast<int>(out.size()), features.dim());
}

TEST(FeatureExtractorTest, FeaturesAreBounded) {
  TestStack stack = MakeStack();
  stack.sim->RunSlots(nullptr, 40);  // populate some state
  FeatureExtractor features(stack.sim.get());
  std::vector<float> out;
  for (RegionId r = 0; r < stack.sim->city().num_regions(); ++r) {
    TaxiObs obs;
    obs.taxi = 0;
    obs.region = r;
    obs.soc = 0.3;
    obs.may_charge = true;
    obs.pe_gap = 100.0;  // extreme gap must still clamp
    features.Extract(obs, &out);
    for (float v : out) {
      EXPECT_GE(v, -1.5f);
      EXPECT_LE(v, 1.5f);
    }
  }
}

TEST(FeatureExtractorTest, SocAndFlagsAppearInFeatures) {
  TestStack stack = MakeStack();
  FeatureExtractor features(stack.sim.get());
  TaxiObs a, b;
  a.taxi = b.taxi = 0;
  a.region = b.region = 0;
  a.soc = 0.9;
  b.soc = 0.1;
  b.must_charge = b.may_charge = true;
  std::vector<float> fa, fb;
  features.Extract(a, &fa);
  features.Extract(b, &fb);
  EXPECT_NE(fa, fb);
}

// ---------------------------------------------------------- ReplayBuffer --

TEST(ReplayBufferTest, FillsThenWraps) {
  ReplayBuffer buffer(3);
  for (int i = 0; i < 5; ++i) {
    DisplacementPolicy::Transition t;
    t.action_index = i;
    buffer.Add(std::move(t));
  }
  EXPECT_EQ(buffer.size(), 3u);
  Rng rng(1);
  std::vector<const DisplacementPolicy::Transition*> out;
  buffer.Sample(50, rng, &out);
  std::set<int> seen;
  for (const auto* t : out) seen.insert(t->action_index);
  // Oldest two (0, 1) were overwritten.
  EXPECT_EQ(seen.count(0), 0u);
  EXPECT_EQ(seen.count(1), 0u);
  EXPECT_GT(seen.count(2) + seen.count(3) + seen.count(4), 0u);
}

TEST(ReplayBufferTest, SampleSizeAndClear) {
  ReplayBuffer buffer(10);
  DisplacementPolicy::Transition t;
  buffer.Add(t);
  Rng rng(2);
  std::vector<const DisplacementPolicy::Transition*> out;
  buffer.Sample(4, rng, &out);
  EXPECT_EQ(out.size(), 4u);
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
}

// -------------------------------------------------------------- Policies --

/// Runs `policy` for `slots` and verifies the simulator never rejects an
/// action (the sim CHECK-fails on invalid ones, so surviving = passing).
void RunPolicyContract(TestStack& stack, DisplacementPolicy* policy,
                       int slots = 80) {
  policy->BeginEpisode(*stack.sim);
  stack.sim->RunSlots(policy, slots);
  EXPECT_EQ(stack.sim->now().index, slots);
}

TEST(GtPolicyTest, ProducesValidActions) {
  TestStack stack = MakeStack();
  GtPolicy policy;
  RunPolicyContract(stack, &policy);
}

TEST(GtPolicyTest, DriverTraitsDeterministicAndHeterogeneous) {
  GtPolicy policy;
  Sample skills;
  for (TaxiId id = 0; id < 500; ++id) {
    const double s1 = policy.DriverSkill(id);
    const double s2 = policy.DriverSkill(id);
    EXPECT_DOUBLE_EQ(s1, s2);
    skills.Add(s1);
    EXPECT_GE(policy.DriverLeash(id), 8.0 - 1e-9);
    const RegionId home = policy.DriverHome(id, 50);
    EXPECT_GE(home, 0);
    EXPECT_LT(home, 50);
  }
  EXPECT_GT(skills.Stddev(), 0.1);
}

TEST(GtPolicyTest, ChargesDuringOffPeakValleys) {
  TestStack stack = MakeStack(300);
  GtPolicy policy;
  stack.sim->RunDays(&policy, 2);
  const auto& starts = stack.sim->trace().charge_starts_by_hour();
  int64_t valley = 0, peak_hours = 0;
  for (int h : {2, 3, 4, 5, 12, 13, 17}) valley += starts[h];
  for (int h : {9, 10, 11, 14, 15, 16}) peak_hours += starts[h];
  EXPECT_GT(valley, peak_hours)
      << "GT must concentrate charging in the price valleys (Fig 4)";
}

TEST(Sd2PolicyTest, ProducesValidActions) {
  TestStack stack = MakeStack();
  Sd2Policy policy;
  RunPolicyContract(stack, &policy);
}

TEST(Sd2PolicyTest, StaysWhenLocalDemandPresent) {
  TestStack stack = MakeStack();
  Sd2Policy policy;
  // Drive some steps so requests exist, then check the policy's choices:
  // a vacant taxi in a region with pending demand must stay.
  stack.sim->RunSlots(&policy, 30);
  std::vector<TaxiObs> obs;
  for (RegionId r = 0; r < stack.sim->city().num_regions(); ++r) {
    if (stack.sim->PendingRequests(r) > 0) {
      TaxiObs o;
      o.taxi = 0;
      o.region = r;
      o.soc = 0.9;
      obs.push_back(o);
      break;
    }
  }
  if (!obs.empty()) {
    std::vector<Action> actions;
    policy.DecideActions(*stack.sim, obs, &actions);
    EXPECT_EQ(actions[0].type, Action::Type::kStay);
  }
}

TEST(TqlPolicyTest, ProducesValidActionsAndLearns) {
  TestStack stack = MakeStack();
  TqlPolicy policy(*stack.sim);
  policy.SetTraining(true);
  EXPECT_TRUE(policy.WantsTransitions());
  RunPolicyContract(stack, &policy);
}

TEST(TqlPolicyTest, QUpdateMovesTowardTarget) {
  TestStack stack = MakeStack();
  TqlPolicy::Options options;
  options.learning_rate = 0.5;
  TqlPolicy policy(*stack.sim, options);
  DisplacementPolicy::Transition t;
  t.region = 0;
  t.next_region = 0;
  t.slot_of_day = 0;
  t.next_slot_of_day = 1;
  t.action_index = 0;  // stay
  t.reward = 1.0;
  t.discount = 0.9;
  t.terminal = true;  // target == reward
  const float before = policy.Q(0, 0, 2, 0);
  policy.Learn({t});
  const float after = policy.Q(0, 0, 2, 0);
  EXPECT_NEAR(after, before + 0.5f * (1.0f - before), 1e-5);
}

TEST(TqlPolicyTest, EpsilonAnneals) {
  TestStack stack = MakeStack();
  TqlPolicy policy(*stack.sim);
  const double initial = policy.CurrentEpsilon();
  std::vector<DisplacementPolicy::Transition> batch(1);
  batch[0].region = 0;
  batch[0].next_region = 0;
  batch[0].terminal = true;
  for (int i = 0; i < 500; ++i) policy.Learn(batch);
  EXPECT_LT(policy.CurrentEpsilon(), initial);
}

TEST(DqnPolicyTest, ProducesValidActionsWhileTraining) {
  TestStack stack = MakeStack();
  DqnPolicy::Options options;
  options.min_replay = 100;
  options.minibatch = 16;
  DqnPolicy policy(*stack.sim, options);
  policy.SetTraining(true);
  RunPolicyContract(stack, &policy, 60);
  EXPECT_EQ(policy.replay_size(), 0u) << "nothing fed yet without a trainer";
}

TEST(DqnPolicyTest, LearnFillsReplayAndTrains) {
  TestStack stack = MakeStack();
  DqnPolicy::Options options;
  options.min_replay = 8;
  options.minibatch = 8;
  DqnPolicy policy(*stack.sim, options);
  FeatureExtractor features(stack.sim.get());
  std::vector<DisplacementPolicy::Transition> batch;
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    DisplacementPolicy::Transition t;
    TaxiObs obs;
    obs.taxi = 0;
    obs.region = static_cast<RegionId>(
        rng.NextBounded(stack.sim->city().num_regions()));
    obs.soc = 0.9;
    features.Extract(obs, &t.state);
    t.next_state = t.state;
    t.region = obs.region;
    t.next_region = obs.region;
    t.action_index = 0;
    t.reward = 1.0;
    t.discount = 0.9;
    batch.push_back(std::move(t));
  }
  policy.Learn(batch);
  EXPECT_EQ(policy.replay_size(), 32u);
}

TEST(DqnPolicyTest, EvalModeIsMostlyGreedyAndDeterministicNet) {
  TestStack stack = MakeStack();
  DqnPolicy policy(*stack.sim);
  policy.SetTraining(false);
  RunPolicyContract(stack, &policy, 40);
}

TEST(TbaPolicyTest, LocalFeaturesExcludeGlobalState) {
  TestStack stack = MakeStack();
  TbaPolicy policy(*stack.sim);
  EXPECT_LT(policy.feature_dim(), 20)
      << "TBA sees only its own state (competitive, no global view)";
  TaxiObs obs;
  obs.taxi = 1;
  obs.region = 0;
  obs.soc = 0.5;
  std::vector<float> f;
  policy.LocalFeatures(*stack.sim, obs, &f);
  EXPECT_EQ(static_cast<int>(f.size()), policy.feature_dim());
}

TEST(TbaPolicyTest, ProducesValidActionsAndUpdates) {
  TestStack stack = MakeStack();
  TbaPolicy::Options options;
  options.batch_size = 64;
  TbaPolicy policy(*stack.sim, options);
  policy.SetTraining(true);
  RunPolicyContract(stack, &policy, 60);
}

TEST(TbaPolicyTest, BaselineTracksRewards) {
  TestStack stack = MakeStack();
  TbaPolicy::Options options;
  options.batch_size = 4;
  options.baseline_decay = 0.5;
  TbaPolicy policy(*stack.sim, options);
  std::vector<DisplacementPolicy::Transition> batch;
  for (int i = 0; i < 4; ++i) {
    DisplacementPolicy::Transition t;
    TaxiObs obs;
    obs.taxi = 0;
    obs.region = 0;
    obs.soc = 0.9;
    policy.LocalFeatures(*stack.sim, obs, &t.state);
    t.region = 0;
    t.action_index = 0;
    t.reward_own = 2.0;
    batch.push_back(std::move(t));
  }
  policy.Learn(batch);
  EXPECT_GT(policy.baseline(), 0.5);
}

TEST(Cma2cPolicyTest, ProducesValidActionsAndTrains) {
  TestStack stack = MakeStack();
  Cma2cPolicy::Options options;
  options.batch_size = 128;
  Cma2cPolicy policy(*stack.sim, options);
  policy.SetTraining(true);
  RunPolicyContract(stack, &policy, 60);
}

TEST(Cma2cPolicyTest, CriticLearnsAConstantTarget) {
  TestStack stack = MakeStack();
  Cma2cPolicy::Options options;
  options.actor_warmup_batches = 1000000;  // critic-only
  Cma2cPolicy policy(*stack.sim, options);
  FeatureExtractor features(stack.sim.get());
  TaxiObs obs;
  obs.taxi = 0;
  obs.region = 0;
  obs.soc = 0.7;
  DisplacementPolicy::Transition t;
  features.Extract(obs, &t.state);
  t.region = 0;
  t.action_index = 0;
  t.reward = 3.0;
  t.terminal = true;
  std::vector<DisplacementPolicy::Transition> batch(64, t);
  for (int i = 0; i < 150; ++i) policy.Update(batch);
  EXPECT_NEAR(policy.Value(t.state), 3.0, 0.3);
  EXPECT_LT(policy.last_critic_loss(), 0.2);
}

TEST(Cma2cPolicyTest, ColdPolicyRarelyChargesVoluntarily) {
  // The negative charge-logit prior: a fresh actor with a half-full pack
  // should almost always cruise, not queue at a charger.
  TestStack stack = MakeStack();
  Cma2cPolicy policy(*stack.sim);
  std::vector<TaxiObs> obs(200);
  for (int i = 0; i < 200; ++i) {
    obs[static_cast<size_t>(i)].taxi = i % stack.sim->num_taxis();
    obs[static_cast<size_t>(i)].region =
        static_cast<RegionId>(i % stack.sim->city().num_regions());
    obs[static_cast<size_t>(i)].soc = 0.5;
    obs[static_cast<size_t>(i)].may_charge = true;
  }
  std::vector<Action> actions;
  policy.DecideActions(*stack.sim, obs, &actions);
  int charges = 0;
  for (const Action& a : actions) {
    charges += a.type == Action::Type::kCharge ? 1 : 0;
  }
  EXPECT_LT(charges, 60) << "cold policy charged " << charges << "/200";
}

TEST(Cma2cPolicyTest, EntropyReportedAfterActorUpdates) {
  TestStack stack = MakeStack();
  Cma2cPolicy::Options options;
  options.actor_warmup_batches = 0;
  options.batch_size = 32;
  Cma2cPolicy policy(*stack.sim, options);
  FeatureExtractor features(stack.sim.get());
  DisplacementPolicy::Transition t;
  TaxiObs obs;
  obs.taxi = 0;
  obs.region = 0;
  obs.soc = 0.9;
  features.Extract(obs, &t.state);
  t.region = 0;
  t.action_index = 0;
  t.reward = 1.0;
  t.terminal = true;
  policy.Update(std::vector<DisplacementPolicy::Transition>(32, t));
  EXPECT_GT(policy.last_entropy(), 0.0);
}

// ------------------------------------------- batched decision-path tests --

TEST(FeatureExtractorTest, ExtractAllRowsMatchExtractExactly) {
  TestStack stack = MakeStack();
  stack.sim->RunSlots(nullptr, 20);  // non-trivial state
  FeatureExtractor features(stack.sim.get());
  std::vector<TaxiObs> obs(17);
  for (size_t i = 0; i < obs.size(); ++i) {
    obs[i].taxi = static_cast<TaxiId>(i);
    obs[i].region =
        static_cast<RegionId>(i % stack.sim->city().num_regions());
    obs[i].soc = 0.2 + 0.04 * static_cast<double>(i);
    obs[i].may_charge = i % 2 == 0;
    obs[i].must_charge = i % 5 == 0;
    obs[i].pe_gap = static_cast<double>(i) - 8.0;
  }
  Matrix batch;
  features.ExtractAll(obs, &batch);
  ASSERT_EQ(batch.rows(), 17);
  ASSERT_EQ(batch.cols(), features.dim());
  std::vector<float> single;
  for (size_t i = 0; i < obs.size(); ++i) {
    features.Extract(obs[i], &single);
    for (int j = 0; j < features.dim(); ++j) {
      // Exact equality: the batched row must be bit-identical.
      EXPECT_EQ(batch.At(static_cast<int>(i), j),
                single[static_cast<size_t>(j)])
          << "row " << i << " col " << j;
    }
  }
}

TEST(FeatureExtractorTest, ExtractAllHandlesEmptyBatch) {
  TestStack stack = MakeStack();
  FeatureExtractor features(stack.sim.get());
  Matrix batch;
  features.ExtractAll({}, &batch);
  EXPECT_EQ(batch.rows(), 0);
  EXPECT_EQ(batch.cols(), features.dim());
}

namespace {

// Samples `rounds` decisions for one fixed observation and returns how
// often each action index was chosen.
std::vector<int> SampleActionHistogram(const TestStack& stack,
                                       Cma2cPolicy* policy, int rounds) {
  TaxiObs obs;
  obs.taxi = 0;
  obs.region = 0;
  obs.soc = 0.6;
  obs.may_charge = true;
  const std::vector<TaxiObs> vacant(1, obs);
  std::vector<int> counts(
      static_cast<size_t>(stack.sim->action_space().size()), 0);
  std::vector<Action> actions;
  for (int r = 0; r < rounds; ++r) {
    policy->DecideActions(*stack.sim, vacant, &actions);
    const int idx = stack.sim->action_space().IndexOf(obs.region, actions[0]);
    EXPECT_GE(idx, 0);
    ++counts[static_cast<size_t>(idx)];
  }
  return counts;
}

double HistogramEntropy(const std::vector<int>& counts) {
  int total = 0;
  for (int c : counts) total += c;
  double h = 0.0;
  for (int c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

TEST(Cma2cPolicyTest, EvalTemperatureBelowOneSharpensSampling) {
  TestStack stack = MakeStack();
  Cma2cPolicy::Options base;
  base.seed = 99;
  Cma2cPolicy::Options sharp = base;
  sharp.eval_temperature = 0.25;
  Cma2cPolicy baseline(*stack.sim, base);
  Cma2cPolicy sharpened(*stack.sim, sharp);
  baseline.SetTraining(false);
  sharpened.SetTraining(false);
  const std::vector<int> base_counts =
      SampleActionHistogram(stack, &baseline, 600);
  const std::vector<int> sharp_counts =
      SampleActionHistogram(stack, &sharpened, 600);
  // Identical networks (same seed), so dividing logits by T < 1 must
  // concentrate the sampled distribution: lower empirical entropy and a
  // taller mode.
  EXPECT_LT(HistogramEntropy(sharp_counts), HistogramEntropy(base_counts));
  EXPECT_GT(*std::max_element(sharp_counts.begin(), sharp_counts.end()),
            *std::max_element(base_counts.begin(), base_counts.end()));
}

TEST(Cma2cPolicyTest, EvalTemperatureOneIsANoOp) {
  // T = 1 must leave the decision path untouched: an eval-mode policy with
  // T = 1 consumes the same RNG stream and picks the same actions as an
  // identically seeded policy in training mode (where no scaling applies).
  TestStack stack = MakeStack();
  Cma2cPolicy::Options options;
  options.seed = 77;
  options.eval_temperature = 1.0;
  Cma2cPolicy eval_policy(*stack.sim, options);
  Cma2cPolicy train_policy(*stack.sim, options);
  eval_policy.SetTraining(false);
  train_policy.SetTraining(true);
  std::vector<TaxiObs> obs(40);
  for (size_t i = 0; i < obs.size(); ++i) {
    obs[i].taxi = static_cast<TaxiId>(i);
    obs[i].region =
        static_cast<RegionId>(i % stack.sim->city().num_regions());
    obs[i].soc = 0.5;
    obs[i].may_charge = true;
  }
  std::vector<Action> eval_actions, train_actions;
  for (int round = 0; round < 5; ++round) {
    eval_policy.DecideActions(*stack.sim, obs, &eval_actions);
    train_policy.DecideActions(*stack.sim, obs, &train_actions);
    EXPECT_EQ(eval_actions, train_actions) << "round " << round;
  }
}

TEST(Cma2cPolicyTest, MaskedActionsNeverSampledAtAnyTemperature) {
  TestStack stack = MakeStack();
  for (const double temperature : {0.25, 1.0, 4.0}) {
    Cma2cPolicy::Options options;
    options.eval_temperature = temperature;
    // Kill the anti-charge prior so charge logits aren't tiny — the mask,
    // not the logits, must be what keeps invalid actions out.
    options.charge_logit_bias = 0.0;
    Cma2cPolicy policy(*stack.sim, options);
    policy.SetTraining(false);
    std::vector<TaxiObs> obs(60);
    for (size_t i = 0; i < obs.size(); ++i) {
      obs[i].taxi = static_cast<TaxiId>(i);
      obs[i].region =
          static_cast<RegionId>(i % stack.sim->city().num_regions());
      obs[i].soc = 0.05;
      obs[i].must_charge = true;  // only charge actions are valid
      obs[i].may_charge = true;
    }
    std::vector<Action> actions;
    for (int round = 0; round < 10; ++round) {
      policy.DecideActions(*stack.sim, obs, &actions);
      for (const Action& a : actions) {
        EXPECT_EQ(a.type, Action::Type::kCharge)
            << "temperature " << temperature;
      }
    }
  }
}

// All six policies: end-to-end contract sweep.
class PolicyContractSweep : public ::testing::TestWithParam<int> {};

TEST_P(PolicyContractSweep, SurvivesTrainingModeEpisode) {
  TestStack stack = MakeStack(200, 57);
  std::unique_ptr<DisplacementPolicy> policy;
  switch (GetParam()) {
    case 0:
      policy = std::make_unique<GtPolicy>();
      break;
    case 1:
      policy = std::make_unique<Sd2Policy>();
      break;
    case 2:
      policy = std::make_unique<TqlPolicy>(*stack.sim);
      break;
    case 3: {
      DqnPolicy::Options o;
      o.min_replay = 64;
      policy = std::make_unique<DqnPolicy>(*stack.sim, o);
      break;
    }
    case 4: {
      TbaPolicy::Options o;
      o.batch_size = 256;
      policy = std::make_unique<TbaPolicy>(*stack.sim, o);
      break;
    }
    default: {
      Cma2cPolicy::Options o;
      o.batch_size = 256;
      policy = std::make_unique<Cma2cPolicy>(*stack.sim, o);
      break;
    }
  }
  policy->SetTraining(true);
  policy->BeginEpisode(*stack.sim);
  stack.sim->RunSlots(policy.get(), 100);
  EXPECT_EQ(stack.sim->now().index, 100);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyContractSweep,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace fairmove
