// Observability layer: JSON building/validation, the P² estimator, fixed-
// bucket histograms, the sharded metrics registry (including its merge
// determinism under the thread pool), scoped profiling spans, the telemetry
// hub, and — the load-bearing guarantee — that enabling telemetry changes
// no simulation output byte.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "fairmove/common/parallel.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/metrics.h"
#include "fairmove/obs/json_parse.h"
#include "fairmove/obs/jsonl.h"
#include "fairmove/obs/manifest.h"
#include "fairmove/obs/metrics.h"
#include "fairmove/obs/span.h"
#include "fairmove/obs/telemetry.h"

namespace fairmove {
namespace {

std::string TempSubdir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fairmove_obs_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ------------------------------------------------------------------ JSON --

TEST(JsonTest, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonTest, NumberRoundTripsAndMapsNonFiniteToNull) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
  EXPECT_EQ(JsonNumber(0.0 / 0.0), "null");
  // %.17g must reproduce the classic non-representable decimal exactly.
  EXPECT_EQ(std::stod(JsonNumber(0.1)), 0.1);
}

TEST(JsonTest, ObjectAndArrayRenderValidJson) {
  JsonObject obj;
  obj.Set("s", "x\"y").Set("d", 2.5).Set("i", int64_t{-3}).Set("b", true);
  JsonArray arr;
  arr.Push(1.0).Push(int64_t{2}).PushRaw(obj.Str());
  JsonObject root;
  root.SetRaw("items", arr.Str());
  EXPECT_TRUE(ValidateJson(root.Str()).ok()) << root.Str();
  const auto keys = std::move(JsonObjectKeys(obj.Str())).value();
  EXPECT_EQ(keys, (std::vector<std::string>{"s", "d", "i", "b"}));
}

TEST(JsonTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_TRUE(ValidateJson("{\"a\":[1,2,{\"b\":null}]}").ok());
  EXPECT_TRUE(ValidateJson("  42  ").ok());
  EXPECT_FALSE(ValidateJson("").ok());
  EXPECT_FALSE(ValidateJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ValidateJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ValidateJson("[1,2").ok());
  EXPECT_FALSE(ValidateJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ValidateJson("{'a':1}").ok());
  EXPECT_FALSE(JsonObjectKeys("[1,2]").ok());
}

TEST(JsonParseTest, ParsesBuilderOutputBackToTheSameValues) {
  // The DOM parser and the builders must round-trip: what JsonObject/
  // JsonArray emit, ParseJson reads back value-for-value (this is the
  // contract the perf gate's document diffing stands on).
  JsonObject obj;
  obj.Set("name", "BM_X/5").Set("cpu", 123.25).Set("iters", int64_t{1000});
  obj.Set("flag", true).SetRaw("tags", JsonArray().Push(1.0).Push(2.0).Str());
  const JsonValue doc = std::move(ParseJson(obj.Str())).value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.StringOr("name", ""), "BM_X/5");
  EXPECT_DOUBLE_EQ(doc.NumberOr("cpu", -1.0), 123.25);
  EXPECT_DOUBLE_EQ(doc.NumberOr("iters", -1.0), 1000.0);
  ASSERT_NE(doc.Find("flag"), nullptr);
  EXPECT_TRUE(doc.Find("flag")->bool_value);
  const JsonValue* tags = doc.Find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_TRUE(tags->is_array());
  ASSERT_EQ(tags->items.size(), 2u);
  EXPECT_DOUBLE_EQ(tags->items[1].number_value, 2.0);
  // %.17g doubles survive the full write -> parse cycle bit-exactly.
  EXPECT_EQ(std::move(ParseJson(JsonNumber(0.1))).value().number_value, 0.1);
}

TEST(JsonParseTest, HandlesEscapesNullsAndMemberOrder) {
  const JsonValue doc =
      std::move(ParseJson("{\"a\\n\\\"b\":null,\"u\":\"\\u0041\","
                          "\"z\":1,\"a\\n\\\"b\":2}"))
          .value();
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.members.size(), 4u);
  EXPECT_EQ(doc.members[0].first, "a\n\"b");
  EXPECT_TRUE(doc.members[0].second.is_null());
  EXPECT_EQ(doc.StringOr("u", ""), "A");
  // Find returns the FIRST member with the key (document order).
  EXPECT_TRUE(doc.Find("a\n\"b")->is_null());
}

TEST(JsonParseTest, RejectsWhatTheValidatorRejects) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("{'a':1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("01").ok());
  EXPECT_FALSE(ParseJson("1.").ok());
  EXPECT_FALSE(ParseJson("\"\\x\"").ok());
  // Hostile nesting is rejected, not recursed into the stack guard.
  EXPECT_FALSE(ParseJson(std::string(100, '[')).ok());
  EXPECT_TRUE(ParseJson("  42  ").ok());
}

TEST(JsonTest, JsonlWriterRoundTripsThroughValidator) {
  const std::string dir = TempSubdir("jsonl");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/rows.jsonl";
  JsonlWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (int i = 0; i < 3; ++i) {
    JsonObject row;
    row.Set("kind", "t").Set("i", i);
    writer.Write(row);
  }
  EXPECT_EQ(writer.rows_written(), 3);
  writer.Close();
  EXPECT_EQ(std::move(ValidateJsonlFile(path, {"kind", "i"})).value(), 3);
  // A required key that rows lack must fail validation.
  EXPECT_FALSE(ValidateJsonlFile(path, {"kind", "missing"}).ok());
  EXPECT_FALSE(ValidateJsonlFile(dir + "/nope.jsonl", {}).ok());
}

// ------------------------------------------------------------ P2Quantile --

TEST(P2QuantileTest, ExactForFewerThanFiveSamples) {
  P2Quantile median(0.5);
  median.Add(10.0);
  EXPECT_DOUBLE_EQ(median.Get(), 10.0);
  median.Add(20.0);
  median.Add(0.0);
  // Sorted {0, 10, 20} -> median 10.
  EXPECT_DOUBLE_EQ(median.Get(), 10.0);
}

TEST(P2QuantileTest, ConvergesOnUniformStream) {
  P2Quantile p90(0.9);
  // Deterministic LCG keeps the test hermetic (no std::rand).
  uint64_t state = 12345;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    p90.Add(static_cast<double>(state >> 11) /
            static_cast<double>(1ULL << 53));
  }
  EXPECT_NEAR(p90.Get(), 0.9, 0.02);
}

TEST(P2QuantileTest, NonFiniteSamplesAreCountedNotIngested) {
  P2Quantile median(0.5);
  median.Add(1.0);
  median.Add(2.0);
  median.Add(3.0);
  const double before = median.Get();
  median.Add(std::numeric_limits<double>::quiet_NaN());
  median.Add(std::numeric_limits<double>::infinity());
  median.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(median.count(), 3);  // finite observations only
  EXPECT_EQ(median.non_finite_count(), 3);
  EXPECT_DOUBLE_EQ(median.Get(), before);  // estimate stays unpoisoned
  EXPECT_TRUE(std::isfinite(median.Get()));
  // Still ingests fine afterwards.
  median.Add(4.0);
  median.Add(5.0);
  EXPECT_EQ(median.count(), 5);
  EXPECT_TRUE(std::isfinite(median.Get()));
}

TEST(P2QuantileTest, DuplicateHeavyStreamStaysOnTheValue) {
  P2Quantile p99(0.99);
  for (int i = 0; i < 1000; ++i) p99.Add(0.5);
  EXPECT_DOUBLE_EQ(p99.Get(), 0.5);
  // A lone outlier in a sea of duplicates must not drag the estimate far.
  p99.Add(100.0);
  for (int i = 0; i < 1000; ++i) p99.Add(0.5);
  EXPECT_NEAR(p99.Get(), 0.5, 1.0);
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramDataTest, MergeIsOrderInvariant) {
  HistogramData a, b, merged_ab, merged_ba;
  a.Init(0.0, 10.0, 10);
  b.Init(0.0, 10.0, 10);
  for (double v : {0.5, 3.2, 9.9, -1.0}) a.Observe(v);   // -1 clamps low
  for (double v : {5.5, 7.7, 42.0}) b.Observe(v);        // 42 clamps high
  merged_ab.Init(0.0, 10.0, 10);
  merged_ab.Merge(a);
  merged_ab.Merge(b);
  merged_ba.Init(0.0, 10.0, 10);
  merged_ba.Merge(b);
  merged_ba.Merge(a);
  EXPECT_EQ(merged_ab.count, 7);
  EXPECT_EQ(merged_ab.buckets, merged_ba.buckets);
  EXPECT_DOUBLE_EQ(merged_ab.min, -1.0);
  EXPECT_DOUBLE_EQ(merged_ab.max, 42.0);
  EXPECT_DOUBLE_EQ(merged_ab.sum, merged_ba.sum);
}

TEST(HistogramDataTest, QuantileInterpolatesAndClampsToObservedRange) {
  HistogramData h;
  h.Init(0.0, 100.0, 10);
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 10.0);
  EXPECT_GE(h.Quantile(0.0), h.min);
  EXPECT_LE(h.Quantile(1.0), h.max);
  HistogramData empty;
  empty.Init(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(HistogramDataTest, LogScaleCountsSaturationAndNonFinite) {
  HistogramData h;
  h.InitLog(1e3, 1e9, 60);
  EXPECT_TRUE(h.log_scale);
  h.Observe(5e4);
  h.Observe(5e5);
  h.Observe(5e6);
  h.Observe(2e9);  // above hi: clamped into the top bucket AND counted
  h.Observe(std::numeric_limits<double>::quiet_NaN());  // lands in no bucket
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.saturated_count, 1);
  EXPECT_EQ(h.non_finite_count, 1);
  EXPECT_DOUBLE_EQ(h.max, 2e9);
  // Geometric buckets keep relative resolution: the p50 of three decade-
  // spread samples plus one outlier sits near the 5e5 sample, which a
  // 60-bucket LINEAR histogram over [1e3, 1e9] could not resolve at all
  // (its first bucket alone spans ~1.7e7).
  EXPECT_NEAR(h.Quantile(0.5) / 5e5, 1.0, 0.6);
}

TEST(MetricsRegistryTest, RegisterLogHistogramRoundTripsJsonAndShards) {
  MetricsRegistry registry;
  registry.RegisterLogHistogram("step_ns", 1e3, 1e10, 70);
  registry.Observe("step_ns", 4e6);
  registry.Observe("step_ns", 5e10);  // saturates
  const auto snapshot = registry.GetSnapshot();
  EXPECT_TRUE(snapshot.histograms.at("step_ns").log_scale);
  EXPECT_EQ(snapshot.histograms.at("step_ns").count, 2);
  EXPECT_EQ(snapshot.histograms.at("step_ns").saturated_count, 1);

  // The JSON export carries the defect counters and scale flag.
  const std::string json = registry.ToJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"log_scale\":true"), std::string::npos);
  EXPECT_NE(json.find("\"saturated_count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"non_finite_count\":0"), std::string::npos);

  // Shards inherit the registered log layout, so sharded == direct.
  MetricsRegistry direct;
  direct.RegisterLogHistogram("v", 1e3, 1e9, 60);
  MetricsRegistry sharded;
  sharded.RegisterLogHistogram("v", 1e3, 1e9, 60);
  std::vector<MetricShard> shards;
  for (int i = 0; i < 3; ++i) shards.push_back(sharded.MakeShard());
  const double values[] = {2e3, 7e5, 3e8, 5e9};
  for (int i = 0; i < 4; ++i) {
    shards[static_cast<size_t>(i % 3)].Observe("v", values[i]);
    direct.Observe("v", values[i]);
  }
  for (const MetricShard& shard : shards) sharded.MergeShard(shard);
  EXPECT_EQ(sharded.ToJson(), direct.ToJson());
}

// -------------------------------------------------------------- Registry --

TEST(MetricsRegistryTest, CountersGaugesHistogramsSnapshotAndJson) {
  MetricsRegistry registry;
  registry.Count("events");
  registry.Count("events", 4);
  registry.SetGauge("temperature", 21.5);
  registry.RegisterHistogram("latency", 0.0, 10.0, 5);
  registry.Observe("latency", 3.0);
  registry.Observe("latency", 7.0);

  const auto snapshot = registry.GetSnapshot();
  EXPECT_EQ(snapshot.counters.at("events"), 5);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("temperature"), 21.5);
  EXPECT_EQ(snapshot.histograms.at("latency").count, 2);

  const std::string json = registry.ToJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  const auto keys = std::move(JsonObjectKeys(json)).value();
  EXPECT_EQ(keys,
            (std::vector<std::string>{"counters", "gauges", "histograms"}));

  registry.Reset();
  EXPECT_TRUE(registry.GetSnapshot().counters.empty());
}

TEST(MetricsRegistryTest, ShardMergeMatchesDirectUpdates) {
  MetricsRegistry direct;
  MetricsRegistry sharded;
  sharded.RegisterHistogram("v", 0.0, 100.0, 20);
  direct.RegisterHistogram("v", 0.0, 100.0, 20);
  std::vector<MetricShard> shards;
  for (int i = 0; i < 4; ++i) shards.push_back(sharded.MakeShard());
  for (int i = 0; i < 4; ++i) {
    shards[static_cast<size_t>(i)].Count("n", i + 1);
    shards[static_cast<size_t>(i)].Observe("v", 10.0 * i);
    direct.Count("n", i + 1);
    direct.Observe("v", 10.0 * i);
  }
  for (const MetricShard& shard : shards) sharded.MergeShard(shard);
  EXPECT_EQ(sharded.ToJson(), direct.ToJson());
}

// The determinism contract applied to metrics: per-task shards merged in
// ascending task index produce byte-identical registry JSON at any thread
// count, exactly like every other parallel reduction in the library.
TEST(MetricsRegistryTest, ShardedParallelForIsThreadCountInvariant) {
  constexpr int64_t kTasks = 64;
  auto run = [](int threads) {
    SetGlobalThreads(threads);
    MetricsRegistry registry;
    registry.RegisterHistogram("work/value", 0.0, 1000.0, 25);
    std::vector<MetricShard> shards;
    shards.reserve(kTasks);
    for (int64_t i = 0; i < kTasks; ++i) {
      shards.push_back(registry.MakeShard());
    }
    GlobalPool().ParallelFor(kTasks, [&](int64_t i) {
      MetricShard& shard = shards[static_cast<size_t>(i)];
      shard.Count("work/tasks");
      shard.Count("work/units", i);
      // Non-commutative-looking doubles: ordered merge must still be stable.
      shard.Observe("work/value", 0.1 * static_cast<double>(i * i));
    });
    for (const MetricShard& shard : shards) registry.MergeShard(shard);
    return registry.ToJson();
  };
  const std::string serial = run(1);
  const std::string four = run(4);
  const std::string three = run(3);
  SetGlobalThreads(1);
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, three);
  EXPECT_TRUE(ValidateJson(serial).ok());
}

TEST(PoolStatsTest, CountersMoveOnlyOnParallelBranch) {
  SetGlobalThreads(1);
  const PoolStats before = GlobalPool().stats();
  GlobalPool().ParallelFor(8, [](int64_t) {});
  const PoolStats serial = GlobalPool().stats();
  // Exact-serial path: no atomics touched at all.
  EXPECT_EQ(serial.regions, before.regions);
  EXPECT_EQ(serial.tasks, before.tasks);

  SetGlobalThreads(2);
  GlobalPool().ParallelFor(8, [](int64_t) {});
  const PoolStats parallel = GlobalPool().stats();
  EXPECT_EQ(parallel.regions, 1);
  EXPECT_EQ(parallel.tasks, 8);
  // Queue-wait timing is gated off by default.
  EXPECT_EQ(parallel.queue_wait_ns_total, 0);
  ThreadPool::SetTimingEnabled(true);
  GlobalPool().ParallelFor(8, [](int64_t) {});
  ThreadPool::SetTimingEnabled(false);
  SetGlobalThreads(1);
}

// ----------------------------------------------------------------- Spans --

TEST(SpanTest, DisabledSpansAreFreeAndInvisible) {
  Profiler::SetEnabled(false);
  Profiler::Reset();
  { FM_SPAN("never/recorded"); }
  EXPECT_EQ(Profiler::ReportText(), "");
}

TEST(SpanTest, NestedSpansBuildAHierarchicalTree) {
  Profiler::SetEnabled(true);
  Profiler::Reset();
  for (int i = 0; i < 3; ++i) {
    FM_SPAN("outer");
    {
      FM_SPAN("inner");
    }
    {
      FM_SPAN("inner");
    }
  }
  Profiler::SetEnabled(false);

  const std::string text = Profiler::ReportText();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("inner"), std::string::npos);
  EXPECT_NE(text.find("count=6"), std::string::npos);  // inner: 2 per loop

  const std::string json = Profiler::ReportJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);

  Profiler::Reset();
  EXPECT_EQ(Profiler::ReportText(), "");
}

// ------------------------------------------------------ Manifest & hub ----

TEST(ManifestTest, RendersSchemaFieldsAndExtras) {
  RunManifest manifest;
  manifest.run_name = "unit";
  manifest.seed = 7;
  manifest.AddExtra("custom", "{\"a\":1}");
  const std::string json = manifest.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  const auto keys = std::move(JsonObjectKeys(json)).value();
  EXPECT_EQ(keys.front(), "schema");
  EXPECT_NE(std::find(keys.begin(), keys.end(), "custom"), keys.end());
}

TEST(TelemetryTest, DisabledByDefaultWithoutEnv) {
  // The suite never sets FAIRMOVE_TELEMETRY, so the singleton must be off.
  EXPECT_FALSE(Telemetry::Get().enabled());
}

TEST(TelemetryTest, EnableWriteFinalizeProducesValidArtefacts) {
  const std::string dir = TempSubdir("hub");
  Telemetry& telemetry = Telemetry::Get();
  ASSERT_TRUE(telemetry.EnableForTesting(dir).ok());
  EXPECT_TRUE(telemetry.enabled());

  JsonObject row;
  row.Set("kind", "episode").Set("phase", "train").Set("method", "X");
  telemetry.training_stream().Write(row);
  telemetry.manifest().run_name = "unit-test";
  telemetry.Finalize();
  telemetry.DisableForTesting();
  EXPECT_FALSE(telemetry.enabled());

  EXPECT_EQ(std::move(ValidateJsonlFile(dir + "/training.jsonl",
                                        {"kind", "phase", "method"}))
                .value(),
            1);
  std::ifstream manifest_in(dir + "/manifest.json");
  ASSERT_TRUE(manifest_in.good());
  std::string manifest_json((std::istreambuf_iterator<char>(manifest_in)),
                            std::istreambuf_iterator<char>());
  ASSERT_TRUE(ValidateJson(manifest_json).ok());
  const auto keys = std::move(JsonObjectKeys(manifest_json)).value();
  for (const char* required :
       {"schema", "run_name", "started_utc", "finished_utc", "seed",
        "threads", "build_type", "compiler"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), required), keys.end())
        << "manifest missing " << required;
  }
  std::ifstream metrics_in(dir + "/metrics.json");
  ASSERT_TRUE(metrics_in.good());
  std::string metrics_json((std::istreambuf_iterator<char>(metrics_in)),
                           std::istreambuf_iterator<char>());
  EXPECT_TRUE(ValidateJson(metrics_json).ok());
}

// --------------------------------------------- telemetry ⊥ simulation -----

std::string FleetDigest(const FleetMetrics& m) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%.17g|%.17g|%.17g|%.17g|%lld|%lld|%lld|%lld",
                m.pe.empty() ? 0.0 : m.pe.Mean(), m.pf, m.pe_sum,
                m.revenue_cny, static_cast<long long>(m.trips),
                static_cast<long long>(m.charge_events),
                static_cast<long long>(m.expired_requests),
                static_cast<long long>(m.total_requests));
  return buf;
}

std::string RunTinySim(bool telemetry_on, int threads,
                       const std::string& dir) {
  SetGlobalThreads(threads);
  Telemetry& telemetry = Telemetry::Get();
  if (telemetry_on) {
    EXPECT_TRUE(telemetry.EnableForTesting(dir).ok());
  } else {
    telemetry.DisableForTesting();
  }
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  if (telemetry_on) system->sim().SetTelemetryLabel("main");
  auto policy = MakePolicy(PolicyKind::kGroundTruth, system->sim(), 7000);
  system->sim().Reset();
  system->sim().RunDays(policy.get(), 1);
  const std::string digest = FleetDigest(ComputeFleetMetrics(system->sim()));
  if (telemetry_on) {
    telemetry.Finalize();
    telemetry.DisableForTesting();
  }
  SetGlobalThreads(1);
  return digest;
}

// The acceptance bar of the observability layer: flipping telemetry on must
// not change one byte of simulation output, at any thread count, while
// still producing a parseable sim stream and manifest.
TEST(TelemetryInvarianceTest, OnOffProducesByteIdenticalFleetMetrics) {
  const std::string dir = TempSubdir("invariance");
  const std::string off_1 = RunTinySim(false, 1, "");
  const std::string on_1 = RunTinySim(true, 1, dir);
  EXPECT_EQ(off_1, on_1);

  const std::string dir4 = TempSubdir("invariance4");
  const std::string off_4 = RunTinySim(false, 4, "");
  const std::string on_4 = RunTinySim(true, 4, dir4);
  EXPECT_EQ(off_4, on_4);
  EXPECT_EQ(off_1, off_4);

  // The telemetry run must have produced a coherent sim stream: one slot
  // row per simulated slot plus any fault rows, all self-labelled.
  const int64_t rows =
      std::move(ValidateJsonlFile(dir + "/sim.jsonl", {"kind", "run", "slot"}))
          .value();
  EXPECT_GT(rows, 0);
  std::ifstream manifest_in(dir + "/manifest.json");
  std::string manifest_json((std::istreambuf_iterator<char>(manifest_in)),
                            std::istreambuf_iterator<char>());
  EXPECT_TRUE(ValidateJson(manifest_json).ok());
}

// Training emits one self-describing row per episode when telemetry is on.
TEST(TelemetryInvarianceTest, TrainerStreamsEpisodeRows) {
  const std::string dir = TempSubdir("trainer");
  Telemetry& telemetry = Telemetry::Get();
  ASSERT_TRUE(telemetry.EnableForTesting(dir).ok());

  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 2;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto policy = MakePolicy(PolicyKind::kFairMove, system->sim(), 5);
  Trainer trainer = system->MakeTrainer();
  trainer.Train(policy.get());
  telemetry.Finalize();
  telemetry.DisableForTesting();

  const int64_t rows = std::move(ValidateJsonlFile(
                                     dir + "/training.jsonl",
                                     {"kind", "phase", "method", "episode"}))
                           .value();
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace fairmove
