// Covers the two allocation primitives behind the Simulator::Step
// zero-allocation contract: the bump Arena and the RingQueue.

#include "fairmove/common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>

#include "fairmove/common/ring_queue.h"

namespace fairmove {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena(/*block_bytes=*/256);
  int* a = arena.AllocArray<int>(10);
  int* b = arena.AllocArray<int>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 10; ++i) {
    a[i] = i;
    b[i] = 100 + i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);
  }
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena(/*block_bytes=*/128);
  // Interleave odd-sized char allocations with stricter types; every
  // pointer must satisfy its type's alignment.
  for (int i = 0; i < 20; ++i) {
    char* c = arena.AllocArray<char>(3);
    ASSERT_NE(c, nullptr);
    double* d = arena.AllocArray<double>(2);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
    int64_t* q = arena.AllocArray<int64_t>(1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % alignof(int64_t), 0u);
  }
}

TEST(ArenaTest, ZeroedVariantZeroes) {
  Arena arena;
  int* p = arena.AllocArrayZeroed<int>(64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(p[i], 0);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/64);
  // 10x the block size: must still succeed, in one contiguous run.
  unsigned char* big = arena.AllocArray<unsigned char>(640);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 640);
  EXPECT_EQ(big[0], 0xAB);
  EXPECT_EQ(big[639], 0xAB);
  EXPECT_GE(arena.bytes_reserved(), 640u);
}

TEST(ArenaTest, ResetRetainsBlocksAndStopsGrowing) {
  Arena arena(/*block_bytes=*/256);
  // Warm-up pass establishes the footprint.
  arena.AllocArray<double>(40);
  arena.AllocArray<int>(100);
  const size_t warm_blocks = arena.num_blocks();
  const size_t warm_reserved = arena.bytes_reserved();
  EXPECT_GT(warm_blocks, 0u);
  // The same allocation pattern after Reset must reuse the retained blocks:
  // no new block, no new reserved byte — this is the property that makes a
  // Reset-per-slot caller allocation-free in steady state.
  for (int round = 0; round < 50; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    arena.AllocArray<double>(40);
    arena.AllocArray<int>(100);
    EXPECT_EQ(arena.num_blocks(), warm_blocks);
    EXPECT_EQ(arena.bytes_reserved(), warm_reserved);
  }
}

TEST(ArenaTest, BytesUsedTracksPayload) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.AllocArray<int>(10);
  EXPECT_EQ(arena.bytes_used(), 10 * sizeof(int));
  arena.AllocArray<double>(5);
  EXPECT_EQ(arena.bytes_used(), 10 * sizeof(int) + 5 * sizeof(double));
}

TEST(RingQueueTest, MatchesDequeThroughMixedChurn) {
  // Differential test against std::deque across a long push/pop sequence
  // that wraps the ring many times and crosses several growth boundaries.
  RingQueue<int> ring;
  std::deque<int> ref;
  uint64_t state = 12345;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>(state >> 33);
  };
  for (int step = 0; step < 5000; ++step) {
    const int op = next() % 3;
    if (op != 0 && !ref.empty()) {
      ASSERT_EQ(ring.front(), ref.front());
      ring.pop_front();
      ref.pop_front();
    } else {
      const int v = next();
      ring.push_back(v);
      ref.push_back(v);
    }
    ASSERT_EQ(ring.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(ring.front(), ref.front());
      ASSERT_EQ(ring[ring.size() - 1], ref.back());
    }
  }
}

TEST(RingQueueTest, EraseAtPreservesFifoOrderOfOthers) {
  RingQueue<int> ring;
  // Force a wrapped layout: fill past capacity boundary, pop a few.
  for (int i = 0; i < 6; ++i) ring.push_back(i);
  for (int i = 0; i < 4; ++i) ring.pop_front();
  for (int i = 6; i < 12; ++i) ring.push_back(i);  // wraps an 8-ring
  // Queue is now 4..11.
  ring.erase_at(2);  // removes 6
  ASSERT_EQ(ring.size(), 7u);
  const int expected[] = {4, 5, 7, 8, 9, 10, 11};
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(ring[i], expected[i]);
}

TEST(RingQueueTest, ClearRetainsCapacity) {
  RingQueue<int> ring;
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  const size_t cap = ring.capacity();
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), cap);
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  EXPECT_EQ(ring.capacity(), cap);  // no regrowth within the old footprint
}

}  // namespace
}  // namespace fairmove
