// Tests of the extension layers: CSV parsing, spatial lookup, the
// empirical (data-driven) demand model, driver-group fairness (§V), and
// the ridesharing dispatch matching mode (§V).

#include <gtest/gtest.h>

#include "fairmove/common/csv.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/group_fairness.h"
#include "fairmove/data/empirical_demand.h"
#include "fairmove/data/generator.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

// ------------------------------------------------------------- ParseCsv --

TEST(ParseCsvTest, RoundTripsTableOutput) {
  Table table({"a", "b", "c"});
  table.AddRow({"1", "two", "3.5"});
  table.AddRow({"x,y", "with \"quotes\"", "line\nbreak"});
  auto parsed_or = ParseCsv(table.ToCsv());
  ASSERT_TRUE(parsed_or.ok()) << parsed_or.status();
  const Table& parsed = parsed_or.value();
  ASSERT_EQ(parsed.num_rows(), 2u);
  EXPECT_EQ(parsed.row(0), table.row(0));
  EXPECT_EQ(parsed.row(1), table.row(1));
  EXPECT_EQ(parsed.header(), table.header());
}

TEST(ParseCsvTest, HandlesCrlfAndBlankLines) {
  auto parsed = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->Cell(1, "b"), "4");
}

TEST(ParseCsvTest, EmptyCellsPreserved) {
  auto parsed = ParseCsv("a,b,c\n,mid,\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->row(0)[0], "");
  EXPECT_EQ(parsed->row(0)[1], "mid");
  EXPECT_EQ(parsed->row(0)[2], "");
}

TEST(ParseCsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());     // ragged row
  EXPECT_FALSE(ParseCsv("a\n\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsv("a\nbad\"quote\n").ok());
}

TEST(ParseCsvTest, ReadCsvFileMissingPathFails) {
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv").ok());
}

// -------------------------------------------------------- NearestRegion --

TEST(NearestRegionTest, CentroidsMapToThemselves) {
  auto city = std::move(CityBuilder(CityConfig{}.Scaled(0.1)).Build()).value();
  for (const Region& r : city.regions()) {
    EXPECT_EQ(city.NearestRegion(r.centroid_km), r.id);
    EXPECT_EQ(city.NearestRegion(r.centroid), r.id);
  }
}

TEST(NearestRegionTest, MatchesLinearScan) {
  auto city = std::move(CityBuilder(CityConfig{}.Scaled(0.08)).Build()).value();
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const PointKm p{rng.Uniform(-5.0, 60.0), rng.Uniform(-5.0, 30.0)};
    RegionId brute = 0;
    double best = DistanceKm(p, city.region(0).centroid_km);
    for (const Region& r : city.regions()) {
      const double d = DistanceKm(p, r.centroid_km);
      if (d < best) {
        best = d;
        brute = r.id;
      }
    }
    const RegionId indexed = city.NearestRegion(p);
    EXPECT_NEAR(DistanceKm(p, city.region(indexed).centroid_km), best, 1e-9)
        << "p=(" << p.x << "," << p.y << ") brute=" << brute
        << " indexed=" << indexed;
  }
}

TEST(PointTest, LatLngPlanarRoundTrip) {
  const PointKm p{12.3, 7.8};
  const PointKm back = LatLngToPlanar(PlanarToLatLng(p));
  EXPECT_NEAR(back.x, p.x, 1e-6);
  EXPECT_NEAR(back.y, p.y, 1e-6);
}

// -------------------------------------------------- EmpiricalDemandModel --

class EmpiricalDemandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
    GtPolicy policy;
    system_->sim().RunDays(&policy, 2);
    DatasetGenerator generator(&system_->sim(), 9);
    transactions_ = generator.GenerateTransactions();
  }
  std::unique_ptr<FairMoveSystem> system_;
  std::vector<TransactionRecord> transactions_;
};

TEST_F(EmpiricalDemandTest, RejectsBadInputs) {
  EmpiricalDemandModel::Options options;
  EXPECT_FALSE(EmpiricalDemandModel::FromTransactions(nullptr, transactions_,
                                                      options)
                   .ok());
  EXPECT_FALSE(
      EmpiricalDemandModel::FromTransactions(&system_->city(), {}, options)
          .ok());
  options.od_hour_bucket = 5;  // does not divide 24
  EXPECT_FALSE(EmpiricalDemandModel::FromTransactions(&system_->city(),
                                                      transactions_, options)
                   .ok());
}

TEST_F(EmpiricalDemandTest, VolumeMatchesObservations) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  options.smoothing = 0.0;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  EXPECT_EQ(model.observations(),
            static_cast<int64_t>(transactions_.size()));
  EXPECT_NEAR(model.TotalTripsPerDay(),
              static_cast<double>(transactions_.size()) / 2.0,
              transactions_.size() * 0.01);
}

TEST_F(EmpiricalDemandTest, RatesCorrelateWithGenerativeModel) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  // Served demand is a censored version of requested demand, so the
  // estimated surface must strongly correlate with the generative rates.
  double sum_g = 0, sum_e = 0, sum_ge = 0, sum_gg = 0, sum_ee = 0;
  int n = 0;
  for (RegionId r = 0; r < system_->city().num_regions(); ++r) {
    for (int hour = 0; hour < kHoursPerDay; ++hour) {
      const TimeSlot slot(hour * kSlotsPerHour);
      const double g = system_->demand().Rate(r, slot);
      const double e = model.Rate(r, slot);
      sum_g += g;
      sum_e += e;
      sum_ge += g * e;
      sum_gg += g * g;
      sum_ee += e * e;
      ++n;
    }
  }
  const double cov = sum_ge / n - (sum_g / n) * (sum_e / n);
  const double var_g = sum_gg / n - (sum_g / n) * (sum_g / n);
  const double var_e = sum_ee / n - (sum_e / n) * (sum_e / n);
  const double corr = cov / std::sqrt(var_g * var_e);
  // Served trips are a censored view of requested demand (expiry clips the
  // busiest region-slots) and pickup coordinates carry street-level jitter
  // across region borders, so the correlation is strong but not perfect.
  EXPECT_GT(corr, 0.7) << "estimated surface lost the spatial structure";
}

TEST_F(EmpiricalDemandTest, DestinationsAreValidAndLocal) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const RegionId origin = static_cast<RegionId>(
        rng.NextBounded(system_->city().num_regions()));
    const RegionId dest = model.SampleDestination(
        origin, TimeSlot(static_cast<int64_t>(rng.NextBounded(kSlotsPerDay))),
        rng);
    EXPECT_GE(dest, 0);
    EXPECT_LT(dest, system_->city().num_regions());
  }
}

TEST_F(EmpiricalDemandTest, CsvRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/fairmove_empirical_test.csv";
  ASSERT_TRUE(
      TransactionRecordsTable(transactions_).WriteCsv(path).ok());
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model_or =
      EmpiricalDemandModel::FromCsvFile(&system_->city(), path, options);
  ASSERT_TRUE(model_or.ok()) << model_or.status();
  EXPECT_EQ(model_or->observations(),
            static_cast<int64_t>(transactions_.size()));
  std::remove(path.c_str());
}

TEST_F(EmpiricalDemandTest, DrivesTheSimulator) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  SimConfig sim_cfg = system_->config().sim;
  auto sim = std::move(Simulator::Create(&system_->city(), &model,
                                         TouTariff::Shenzhen(), sim_cfg))
                 .value();
  GtPolicy policy;
  sim->RunDays(&policy, 1);
  EXPECT_GT(sim->trace().total_trips(), 1000);
}

// ----------------------------------------------------------- DriverGroups --

TEST(DriverGroupsTest, CreateValidatesInputs) {
  EXPECT_FALSE(DriverGroups::Create(0, 5, 1).ok());
  EXPECT_FALSE(DriverGroups::Create(10, 0, 1).ok());
  EXPECT_FALSE(DriverGroups::Create(3, 5, 1).ok());
  EXPECT_TRUE(DriverGroups::Create(100, 5, 1).ok());
}

TEST(DriverGroupsTest, AssignmentIsDeterministicAndBalanced) {
  auto a = std::move(DriverGroups::Create(1000, 5, 7)).value();
  auto b = std::move(DriverGroups::Create(1000, 5, 7)).value();
  for (TaxiId id = 0; id < 1000; ++id) {
    EXPECT_EQ(a.group(id), b.group(id));
    EXPECT_GE(a.group(id), 0);
    EXPECT_LT(a.group(id), 5);
  }
  for (int g = 0; g < 5; ++g) {
    EXPECT_GT(a.members(g).size(), 100u);  // roughly balanced
    EXPECT_LT(a.members(g).size(), 300u);
  }
}

TEST(DriverGroupsTest, StatsPartitionTheFleet) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunDays(&policy, 1);
  auto groups =
      std::move(DriverGroups::Create(system->sim().num_taxis(), 5, 3))
          .value();
  const auto stats = groups.ComputeStats(system->sim());
  int64_t total = 0;
  for (const auto& s : stats) {
    total += s.taxis;
    EXPECT_GT(s.pe_mean, 0.0);
    EXPECT_GE(s.pe_variance, 0.0);
  }
  EXPECT_EQ(total, system->sim().num_taxis());
  // Within-group PF is at most slightly above fleet PF for a random
  // (rating-independent) assignment, and must be positive.
  const double within = groups.WithinGroupPf(system->sim());
  EXPECT_GT(within, 0.0);
  const FleetMetrics m = ComputeFleetMetrics(system->sim());
  EXPECT_LT(within, m.pf * 1.2);
}

TEST(DriverGroupsTest, TrainerAcceptsGroupBaseline) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto groups =
      std::move(DriverGroups::Create(system->sim().num_taxis(), 5, 3))
          .value();
  Trainer trainer = system->MakeTrainer();
  trainer.SetDriverGroups(&groups);
  GtPolicy policy;
  const auto stats = trainer.RunEvaluationEpisode(&policy, 11, 72);
  EXPECT_GT(stats.transitions, 0);
}

// ------------------------------------------------------- Dispatch mode --

TEST(DispatchModeTest, ValidatesRadius) {
  SimConfig cfg;
  cfg.dispatch_radius_minutes = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(DispatchModeTest, RaisesServiceRateOverStreetHail) {
  FairMoveConfig base = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto street_system = std::move(FairMoveSystem::Create(base)).value();
  GtPolicy p1;
  street_system->sim().RunDays(&p1, 1);
  const FleetMetrics street = ComputeFleetMetrics(street_system->sim());

  FairMoveConfig dispatch_cfg = base;
  dispatch_cfg.sim.dispatch_radius_minutes = 12.0;
  auto dispatch_system =
      std::move(FairMoveSystem::Create(dispatch_cfg)).value();
  GtPolicy p2;
  dispatch_system->sim().RunDays(&p2, 1);
  const FleetMetrics dispatch = ComputeFleetMetrics(dispatch_system->sim());

  EXPECT_GT(dispatch.ServiceRate(), street.ServiceRate());
  EXPECT_GT(dispatch.trips, street.trips);
}

TEST(DispatchModeTest, InvariantsStillHold) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  cfg.sim.dispatch_radius_minutes = 15.0;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunDays(&policy, 1);
  int64_t pending = 0;
  for (RegionId r = 0; r < system->city().num_regions(); ++r) {
    pending += system->sim().PendingRequests(r);
  }
  EXPECT_EQ(system->sim().total_requests(),
            system->sim().trace().total_trips() +
                system->sim().trace().expired_requests() + pending);
  for (const Taxi& taxi : system->sim().taxis()) {
    EXPECT_GE(taxi.battery.soc(), 0.0);
    EXPECT_LE(taxi.battery.soc(), 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace fairmove
