// Tests of the extension layers: CSV parsing, spatial lookup, the
// empirical (data-driven) demand model, driver-group fairness (§V), and
// the ridesharing dispatch matching mode (§V).

#include <gtest/gtest.h>

#include <fstream>

#include "fairmove/common/csv.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/group_fairness.h"
#include "fairmove/data/empirical_demand.h"
#include "fairmove/data/generator.h"
#include "fairmove/resilience/chaos.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

// ------------------------------------------------------------- ParseCsv --

TEST(ParseCsvTest, RoundTripsTableOutput) {
  Table table({"a", "b", "c"});
  table.AddRow({"1", "two", "3.5"});
  table.AddRow({"x,y", "with \"quotes\"", "line\nbreak"});
  auto parsed_or = ParseCsv(table.ToCsv());
  ASSERT_TRUE(parsed_or.ok()) << parsed_or.status();
  const Table& parsed = parsed_or.value();
  ASSERT_EQ(parsed.num_rows(), 2u);
  EXPECT_EQ(parsed.row(0), table.row(0));
  EXPECT_EQ(parsed.row(1), table.row(1));
  EXPECT_EQ(parsed.header(), table.header());
}

TEST(ParseCsvTest, HandlesCrlfAndBlankLines) {
  auto parsed = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->Cell(1, "b"), "4");
}

TEST(ParseCsvTest, EmptyCellsPreserved) {
  auto parsed = ParseCsv("a,b,c\n,mid,\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->row(0)[0], "");
  EXPECT_EQ(parsed->row(0)[1], "mid");
  EXPECT_EQ(parsed->row(0)[2], "");
}

TEST(ParseCsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());     // ragged row
  EXPECT_FALSE(ParseCsv("a\n\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsv("a\nbad\"quote\n").ok());
}

TEST(ParseCsvTest, ReadCsvFileMissingPathFails) {
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv").ok());
}

TEST(ParseCsvTest, RejectsEmbeddedNulBytes) {
  const std::string nul_in_row = std::string("a,b\n1,2") + '\0' + "\n";
  EXPECT_FALSE(ParseCsv(nul_in_row).ok());
  const std::string nul_in_header = std::string("a") + '\0' + ",b\n1,2\n";
  EXPECT_FALSE(ParseCsv(nul_in_header).ok());
}

// ------------------------------------------------------ ParseCsvLenient --

TEST(ParseCsvLenientTest, QuarantinesDamagedRowsAndKeepsTheRest) {
  const std::string text = std::string("a,b\n") +
                           "1,2\n" +        // good
                           "3\n" +          // truncated
                           "4,5,6\n" +      // extra cell
                           "bad\"quote,7\n" +
                           "8,9" + '\0' + "\n" +
                           "10,11\n";       // good
  CsvQuarantine q;
  auto parsed = ParseCsvLenient(text, &q);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->Cell(0, "a"), "1");
  EXPECT_EQ(parsed->Cell(1, "b"), "11");
  EXPECT_EQ(q.ragged_rows, 2);
  EXPECT_EQ(q.malformed_quoting, 1);
  EXPECT_EQ(q.nul_rows, 1);
  EXPECT_EQ(q.total(), 4);
}

TEST(ParseCsvLenientTest, RecoversAfterUnterminatedQuote) {
  // The unterminated quote swallows the rest of the text in the strict
  // parser; the lenient one resynchronises at the next physical line.
  CsvQuarantine q;
  auto parsed = ParseCsvLenient("a,b\n\"open,2\n3,4\n", &q);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->Cell(0, "a"), "3");
  EXPECT_EQ(q.malformed_quoting, 1);
}

TEST(ParseCsvLenientTest, BrokenHeaderStillFails) {
  EXPECT_FALSE(ParseCsvLenient("").ok());
  EXPECT_FALSE(ParseCsvLenient(std::string("a") + '\0' + ",b\n1,2\n").ok());
}

TEST(ParseCsvLenientTest, CleanInputReportsNoQuarantine) {
  CsvQuarantine q;
  auto parsed = ParseCsvLenient("a,b\n1,2\n3,4\n", &q);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(q.total(), 0);
}

// ------------------------------------------- TransactionRecordsFromTable --

TEST(TransactionRecordsFromTableTest, QuarantinesNonNumericRows) {
  Table table({"vehicle_id", "pickup_time_s", "pickup_lat", "pickup_lng",
               "dropoff_lat", "dropoff_lng"});
  table.AddRow({"1", "600", "22.5", "114.0", "22.6", "114.1"});
  table.AddRow({"??garbage??", "600", "22.5", "114.0", "22.6", "114.1"});
  table.AddRow({"2", "1200", "not-a-number", "114.0", "22.6", "114.1"});
  int64_t quarantined = 0;
  auto records = TransactionRecordsFromTable(table, &quarantined);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].vehicle_id, 1);
  EXPECT_EQ((*records)[0].pickup_time_s, 600);
  EXPECT_EQ(quarantined, 2);
}

TEST(TransactionRecordsFromTableTest, MissingCoreColumnFails) {
  Table table({"vehicle_id", "pickup_time_s"});
  table.AddRow({"1", "600"});
  EXPECT_FALSE(TransactionRecordsFromTable(table).ok());
}

// -------------------------------------------------------- NearestRegion --

TEST(NearestRegionTest, CentroidsMapToThemselves) {
  auto city = std::move(CityBuilder(CityConfig{}.Scaled(0.1)).Build()).value();
  for (const Region& r : city.regions()) {
    EXPECT_EQ(city.NearestRegion(r.centroid_km), r.id);
    EXPECT_EQ(city.NearestRegion(r.centroid), r.id);
  }
}

TEST(NearestRegionTest, MatchesLinearScan) {
  auto city = std::move(CityBuilder(CityConfig{}.Scaled(0.08)).Build()).value();
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const PointKm p{rng.Uniform(-5.0, 60.0), rng.Uniform(-5.0, 30.0)};
    RegionId brute = 0;
    double best = DistanceKm(p, city.region(0).centroid_km);
    for (const Region& r : city.regions()) {
      const double d = DistanceKm(p, r.centroid_km);
      if (d < best) {
        best = d;
        brute = r.id;
      }
    }
    const RegionId indexed = city.NearestRegion(p);
    EXPECT_NEAR(DistanceKm(p, city.region(indexed).centroid_km), best, 1e-9)
        << "p=(" << p.x << "," << p.y << ") brute=" << brute
        << " indexed=" << indexed;
  }
}

TEST(PointTest, LatLngPlanarRoundTrip) {
  const PointKm p{12.3, 7.8};
  const PointKm back = LatLngToPlanar(PlanarToLatLng(p));
  EXPECT_NEAR(back.x, p.x, 1e-6);
  EXPECT_NEAR(back.y, p.y, 1e-6);
}

// -------------------------------------------------- EmpiricalDemandModel --

class EmpiricalDemandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
    GtPolicy policy;
    system_->sim().RunDays(&policy, 2);
    DatasetGenerator generator(&system_->sim(), 9);
    transactions_ = generator.GenerateTransactions();
  }
  std::unique_ptr<FairMoveSystem> system_;
  std::vector<TransactionRecord> transactions_;
};

TEST_F(EmpiricalDemandTest, RejectsBadInputs) {
  EmpiricalDemandModel::Options options;
  EXPECT_FALSE(EmpiricalDemandModel::FromTransactions(nullptr, transactions_,
                                                      options)
                   .ok());
  EXPECT_FALSE(
      EmpiricalDemandModel::FromTransactions(&system_->city(), {}, options)
          .ok());
  options.od_hour_bucket = 5;  // does not divide 24
  EXPECT_FALSE(EmpiricalDemandModel::FromTransactions(&system_->city(),
                                                      transactions_, options)
                   .ok());
}

TEST_F(EmpiricalDemandTest, VolumeMatchesObservations) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  options.smoothing = 0.0;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  EXPECT_EQ(model.observations(),
            static_cast<int64_t>(transactions_.size()));
  EXPECT_NEAR(model.TotalTripsPerDay(),
              static_cast<double>(transactions_.size()) / 2.0,
              transactions_.size() * 0.01);
}

TEST_F(EmpiricalDemandTest, RatesCorrelateWithGenerativeModel) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  // Served demand is a censored version of requested demand, so the
  // estimated surface must strongly correlate with the generative rates.
  double sum_g = 0, sum_e = 0, sum_ge = 0, sum_gg = 0, sum_ee = 0;
  int n = 0;
  for (RegionId r = 0; r < system_->city().num_regions(); ++r) {
    for (int hour = 0; hour < kHoursPerDay; ++hour) {
      const TimeSlot slot(hour * kSlotsPerHour);
      const double g = system_->demand().Rate(r, slot);
      const double e = model.Rate(r, slot);
      sum_g += g;
      sum_e += e;
      sum_ge += g * e;
      sum_gg += g * g;
      sum_ee += e * e;
      ++n;
    }
  }
  const double cov = sum_ge / n - (sum_g / n) * (sum_e / n);
  const double var_g = sum_gg / n - (sum_g / n) * (sum_g / n);
  const double var_e = sum_ee / n - (sum_e / n) * (sum_e / n);
  const double corr = cov / std::sqrt(var_g * var_e);
  // Served trips are a censored view of requested demand (expiry clips the
  // busiest region-slots) and pickup coordinates carry street-level jitter
  // across region borders, so the correlation is strong but not perfect.
  EXPECT_GT(corr, 0.7) << "estimated surface lost the spatial structure";
}

TEST_F(EmpiricalDemandTest, DestinationsAreValidAndLocal) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const RegionId origin = static_cast<RegionId>(
        rng.NextBounded(system_->city().num_regions()));
    const RegionId dest = model.SampleDestination(
        origin, TimeSlot(static_cast<int64_t>(rng.NextBounded(kSlotsPerDay))),
        rng);
    EXPECT_GE(dest, 0);
    EXPECT_LT(dest, system_->city().num_regions());
  }
}

TEST_F(EmpiricalDemandTest, CsvRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/fairmove_empirical_test.csv";
  ASSERT_TRUE(
      TransactionRecordsTable(transactions_).WriteCsv(path).ok());
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model_or =
      EmpiricalDemandModel::FromCsvFile(&system_->city(), path, options);
  ASSERT_TRUE(model_or.ok()) << model_or.status();
  EXPECT_EQ(model_or->observations(),
            static_cast<int64_t>(transactions_.size()));
  std::remove(path.c_str());
}

TEST_F(EmpiricalDemandTest, SurvivesCorruptedCsv) {
  // Chaos-corrupt the exported transaction log (dropped, truncated,
  // mangled and NUL-damaged rows), then ingest it: the damaged rows must
  // be quarantined, the surviving ones must still build a model.
  RecordCorruption corruption;
  corruption.drop_prob = 0.02;
  corruption.truncate_prob = 0.05;
  corruption.mangle_prob = 0.05;
  corruption.nul_prob = 0.03;
  corruption.seed = 77;
  CorruptionStats stats;
  const std::string corrupted = CorruptCsvText(
      TransactionRecordsTable(transactions_).ToCsv(), corruption, &stats);
  ASSERT_GT(stats.total_corrupted(), 0);

  const std::string path =
      ::testing::TempDir() + "/fairmove_corrupted_test.csv";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(out));
    out << corrupted;
  }
  EmpiricalDemandModel::Options options;
  options.days = 2;
  int64_t quarantined = 0;
  auto model_or = EmpiricalDemandModel::FromCsvFile(&system_->city(), path,
                                                    options, &quarantined);
  std::remove(path.c_str());
  ASSERT_TRUE(model_or.ok()) << model_or.status();
  // Every original row is either dropped, quarantined, or ingested. (A
  // truncated row can survive ingestion when only the tail of its last
  // numeric cell was cut, so quarantined <= corrupted - dropped.)
  EXPECT_EQ(model_or->observations() + quarantined + stats.dropped,
            static_cast<int64_t>(transactions_.size()));
  EXPECT_GE(quarantined, stats.mangled + stats.nul_injected);
  EXPECT_LE(quarantined + stats.dropped, stats.total_corrupted());
  EXPECT_GT(model_or->observations(), 0);
}

TEST_F(EmpiricalDemandTest, DrivesTheSimulator) {
  EmpiricalDemandModel::Options options;
  options.days = 2;
  auto model = std::move(EmpiricalDemandModel::FromTransactions(
                             &system_->city(), transactions_, options))
                   .value();
  SimConfig sim_cfg = system_->config().sim;
  auto sim = std::move(Simulator::Create(&system_->city(), &model,
                                         TouTariff::Shenzhen(), sim_cfg))
                 .value();
  GtPolicy policy;
  sim->RunDays(&policy, 1);
  EXPECT_GT(sim->trace().total_trips(), 1000);
}

// ----------------------------------------------------------- DriverGroups --

TEST(DriverGroupsTest, CreateValidatesInputs) {
  EXPECT_FALSE(DriverGroups::Create(0, 5, 1).ok());
  EXPECT_FALSE(DriverGroups::Create(10, 0, 1).ok());
  EXPECT_FALSE(DriverGroups::Create(3, 5, 1).ok());
  EXPECT_TRUE(DriverGroups::Create(100, 5, 1).ok());
}

TEST(DriverGroupsTest, AssignmentIsDeterministicAndBalanced) {
  auto a = std::move(DriverGroups::Create(1000, 5, 7)).value();
  auto b = std::move(DriverGroups::Create(1000, 5, 7)).value();
  for (TaxiId id = 0; id < 1000; ++id) {
    EXPECT_EQ(a.group(id), b.group(id));
    EXPECT_GE(a.group(id), 0);
    EXPECT_LT(a.group(id), 5);
  }
  for (int g = 0; g < 5; ++g) {
    EXPECT_GT(a.members(g).size(), 100u);  // roughly balanced
    EXPECT_LT(a.members(g).size(), 300u);
  }
}

TEST(DriverGroupsTest, StatsPartitionTheFleet) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunDays(&policy, 1);
  auto groups =
      std::move(DriverGroups::Create(system->sim().num_taxis(), 5, 3))
          .value();
  const auto stats = groups.ComputeStats(system->sim());
  int64_t total = 0;
  for (const auto& s : stats) {
    total += s.taxis;
    EXPECT_GT(s.pe_mean, 0.0);
    EXPECT_GE(s.pe_variance, 0.0);
  }
  EXPECT_EQ(total, system->sim().num_taxis());
  // Within-group PF is at most slightly above fleet PF for a random
  // (rating-independent) assignment, and must be positive.
  const double within = groups.WithinGroupPf(system->sim());
  EXPECT_GT(within, 0.0);
  const FleetMetrics m = ComputeFleetMetrics(system->sim());
  EXPECT_LT(within, m.pf * 1.2);
}

TEST(DriverGroupsTest, TrainerAcceptsGroupBaseline) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto groups =
      std::move(DriverGroups::Create(system->sim().num_taxis(), 5, 3))
          .value();
  Trainer trainer = system->MakeTrainer();
  trainer.SetDriverGroups(&groups);
  GtPolicy policy;
  const auto stats = trainer.RunEvaluationEpisode(&policy, 11, 72);
  EXPECT_GT(stats.transitions, 0);
}

// ------------------------------------------------------- Dispatch mode --

TEST(DispatchModeTest, ValidatesRadius) {
  SimConfig cfg;
  cfg.dispatch_radius_minutes = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(DispatchModeTest, RaisesServiceRateOverStreetHail) {
  FairMoveConfig base = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto street_system = std::move(FairMoveSystem::Create(base)).value();
  GtPolicy p1;
  street_system->sim().RunDays(&p1, 1);
  const FleetMetrics street = ComputeFleetMetrics(street_system->sim());

  FairMoveConfig dispatch_cfg = base;
  dispatch_cfg.sim.dispatch_radius_minutes = 12.0;
  auto dispatch_system =
      std::move(FairMoveSystem::Create(dispatch_cfg)).value();
  GtPolicy p2;
  dispatch_system->sim().RunDays(&p2, 1);
  const FleetMetrics dispatch = ComputeFleetMetrics(dispatch_system->sim());

  EXPECT_GT(dispatch.ServiceRate(), street.ServiceRate());
  EXPECT_GT(dispatch.trips, street.trips);
}

TEST(DispatchModeTest, InvariantsStillHold) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  cfg.sim.dispatch_radius_minutes = 15.0;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunDays(&policy, 1);
  int64_t pending = 0;
  for (RegionId r = 0; r < system->city().num_regions(); ++r) {
    pending += system->sim().PendingRequests(r);
  }
  EXPECT_EQ(system->sim().total_requests(),
            system->sim().trace().total_trips() +
                system->sim().trace().expired_requests() + pending);
  for (double soc : system->sim().fleet().soc) {
    EXPECT_GE(soc, 0.0);
    EXPECT_LE(soc, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace fairmove
