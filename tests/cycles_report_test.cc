// Tests of working-cycle records (paper §II-B / Fig 1) and the
// consolidated report writer.

#include <gtest/gtest.h>

#include <cstdio>

#include "fairmove/core/fairmove.h"
#include "fairmove/core/report.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

class CycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
    GtPolicy policy;
    system_->sim().RunDays(&policy, 2);
  }
  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(CycleTest, OneCyclePerChargeEvent) {
  EXPECT_EQ(system_->sim().trace().cycles().size(),
            system_->sim().trace().charge_events().size());
}

TEST_F(CycleTest, CycleDecompositionIsConsistent) {
  for (const CycleRecord& c : system_->sim().trace().cycles()) {
    EXPECT_GE(c.cruise_min, 0.0f);
    EXPECT_GE(c.serve_min, 0.0f);
    EXPECT_GE(c.idle_min, 0.0f);
    EXPECT_GT(c.charge_min, 0.0f) << "a cycle ends with a charge";
    EXPECT_FLOAT_EQ(c.op_min, c.cruise_min + c.serve_min);
    EXPECT_LT(c.start_slot, c.end_slot);
    // T_cycle = T_op + T_idle + T_charge must roughly match the wall-clock
    // span (stranding penalties can make the accounted time exceed it).
    const double wall_min =
        static_cast<double>(c.end_slot - c.start_slot) * kMinutesPerSlot;
    EXPECT_NEAR(c.cycle_min(), wall_min,
                system_->config().sim.stranding_penalty_min + 1e-3);
  }
}

TEST_F(CycleTest, CycleProfitsAndTripsArePlausible) {
  int64_t trips = 0;
  double revenue = 0.0;
  for (const CycleRecord& c : system_->sim().trace().cycles()) {
    EXPECT_GE(c.trips, 0);
    EXPECT_GE(c.revenue_cny, 0.0f);
    EXPECT_GT(c.charge_cost_cny, 0.0f);
    trips += c.trips;
    revenue += c.revenue_cny;
  }
  // Cycle-attributed trips are a subset of all trips (the horizon's open
  // cycles are not closed).
  EXPECT_LE(trips, system_->sim().trace().total_trips());
  EXPECT_GT(trips, 0);
  EXPECT_GT(revenue, 0.0);
}

TEST_F(CycleTest, TypicalCycleLastsHours) {
  Sample cycle_hours;
  for (const CycleRecord& c : system_->sim().trace().cycles()) {
    cycle_hours.Add(c.cycle_min() / 60.0);
  }
  ASSERT_FALSE(cycle_hours.empty());
  // One charge per ~12-24h of operation at these consumption rates.
  EXPECT_GT(cycle_hours.Median(), 3.0);
  EXPECT_LT(cycle_hours.Median(), 48.0);
}

// ---------------------------------------------------------------- Report --

TEST(ReportWriterTest, RendersAllSections) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 1;
  cfg.eval.days = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  const auto results = system->RunComparison({PolicyKind::kSd2});
  ReportWriter report(results);
  const std::string markdown = report.ToMarkdown();
  EXPECT_NE(markdown.find("# FairMove evaluation report"), std::string::npos);
  EXPECT_NE(markdown.find("Headline comparison"), std::string::npos);
  EXPECT_NE(markdown.find("Fig 10"), std::string::npos);
  EXPECT_NE(markdown.find("Fig 12"), std::string::npos);
  EXPECT_NE(markdown.find("Fig 14"), std::string::npos);
  EXPECT_NE(markdown.find("Figs 11/13"), std::string::npos);
  EXPECT_NE(markdown.find("| GT |"), std::string::npos);
  EXPECT_NE(markdown.find("| SD2 |"), std::string::npos);
}

TEST(ReportWriterTest, WritesFile) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.eval.days = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Evaluator evaluator = system->MakeEvaluator();
  std::vector<MethodResult> results{evaluator.RunGroundTruth()};
  ReportWriter report(std::move(results));
  const std::string path = ::testing::TempDir() + "/fairmove_report_test.md";
  ASSERT_TRUE(report.WriteFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fairmove
