// Unit tests of the simulator's building blocks: ActionSpace, the matching
// engine, station queues and the trace log.

#include <gtest/gtest.h>

#include "fairmove/geo/city_builder.h"
#include "fairmove/sim/action.h"
#include "fairmove/sim/matching.h"
#include "fairmove/sim/station_queue.h"
#include "fairmove/sim/trace.h"

namespace fairmove {
namespace {

class ActionSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto city_or = CityBuilder(CityConfig{}.Scaled(0.1)).Build();
    ASSERT_TRUE(city_or.ok());
    city_ = std::make_unique<City>(std::move(city_or).value());
    space_ = std::make_unique<ActionSpace>(city_.get());
  }
  std::unique_ptr<City> city_;
  std::unique_ptr<ActionSpace> space_;
};

TEST_F(ActionSpaceTest, LayoutMatchesCityGeometry) {
  EXPECT_EQ(space_->size(),
            1 + city_->max_neighbors() +
                std::min(City::kNearestStations, city_->num_stations()));
  EXPECT_EQ(space_->stay_index(), 0);
  EXPECT_EQ(space_->first_move_index(), 1);
  EXPECT_EQ(space_->first_charge_index(), 1 + city_->max_neighbors());
}

TEST_F(ActionSpaceTest, StayAlwaysValidUnlessForcedToCharge) {
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    EXPECT_TRUE(space_->IsValid(r, 0, false, false));
    EXPECT_FALSE(space_->IsValid(r, 0, true, true));
  }
}

TEST_F(ActionSpaceTest, MoveSlotsValidExactlyForExistingNeighbors) {
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    const int n = static_cast<int>(city_->Neighbors(r).size());
    for (int i = 0; i < city_->max_neighbors(); ++i) {
      EXPECT_EQ(space_->IsValid(r, space_->first_move_index() + i, false,
                                false),
                i < n)
          << "region " << r << " slot " << i;
    }
  }
}

TEST_F(ActionSpaceTest, ChargeRequiresMayOrMustFlag) {
  const RegionId r = 0;
  const int charge0 = space_->first_charge_index();
  EXPECT_FALSE(space_->IsValid(r, charge0, false, false));
  EXPECT_TRUE(space_->IsValid(r, charge0, false, true));
  EXPECT_TRUE(space_->IsValid(r, charge0, true, true));
}

TEST_F(ActionSpaceTest, MustChargeMasksEverythingButStations) {
  std::vector<bool> mask;
  space_->Mask(0, /*must=*/true, /*may=*/true, &mask);
  for (int i = 0; i < space_->first_charge_index(); ++i) {
    EXPECT_FALSE(mask[static_cast<size_t>(i)]);
  }
  int valid = 0;
  for (bool b : mask) valid += b ? 1 : 0;
  EXPECT_EQ(valid, static_cast<int>(city_->NearestStations(0).size()));
}

TEST_F(ActionSpaceTest, MaterializeIndexOfRoundTrip) {
  // Property: every valid index materialises to an action that maps back to
  // the same index, in every region.
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    std::vector<bool> mask;
    space_->Mask(r, false, true, &mask);
    for (int i = 0; i < space_->size(); ++i) {
      if (!mask[static_cast<size_t>(i)]) continue;
      const Action a = space_->Materialize(r, i);
      EXPECT_EQ(space_->IndexOf(r, a), i) << "region " << r << " idx " << i;
    }
  }
}

TEST_F(ActionSpaceTest, IndexOfUnknownTargetsIsMinusOne) {
  // A station that is not among the nearest five of region 0.
  const auto& near = city_->NearestStations(0);
  for (StationId s = 0; s < city_->num_stations(); ++s) {
    if (std::find(near.begin(), near.end(), s) == near.end()) {
      EXPECT_EQ(space_->IndexOf(0, Action::Charge(s)), -1);
      break;
    }
  }
  // A region that is not adjacent to region 0.
  for (RegionId r = 0; r < city_->num_regions(); ++r) {
    const auto& nbrs = city_->Neighbors(0);
    if (r != 0 && std::find(nbrs.begin(), nbrs.end(), r) == nbrs.end()) {
      EXPECT_EQ(space_->IndexOf(0, Action::Move(r)), -1);
      break;
    }
  }
}

TEST(ActionTest, ToStringIsReadable) {
  EXPECT_EQ(Action::Stay().ToString(), "stay");
  EXPECT_EQ(Action::Move(7).ToString(), "move->7");
  EXPECT_EQ(Action::Charge(3).ToString(), "charge@3");
}

// --------------------------------------------------------- MatchingEngine --

TEST(MatchingEngineTest, FifoPerRegion) {
  MatchingEngine engine(3, 2);
  engine.AddRequest({0, 1, 10});
  engine.AddRequest({0, 2, 11});
  EXPECT_EQ(engine.PendingCount(0), 2);
  EXPECT_EQ(engine.TotalPending(), 2);
  const Request first = engine.PopOldest(0);
  EXPECT_EQ(first.origin, 0);
  EXPECT_EQ(first.created_slot, 10);
  // Destinations are drawn lazily by the server, never stored.
  EXPECT_EQ(first.dest, kInvalidRegion);
  EXPECT_EQ(engine.PendingCount(0), 1);
  EXPECT_EQ(engine.PopOldest(0).created_slot, 11);
}

TEST(MatchingEngineTest, CohortsMergeWithinOneSlot) {
  MatchingEngine engine(2, 3);
  engine.AddRequests(1, 5, 7);
  engine.AddRequests(1, 3, 7);  // same slot: merges into one cohort
  engine.AddRequests(1, 2, 8);
  EXPECT_EQ(engine.PendingCount(1), 10);
  EXPECT_EQ(engine.TotalPending(), 10);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(engine.PopOldest(1).created_slot, 7);
  }
  EXPECT_EQ(engine.PopOldest(1).created_slot, 8);
  EXPECT_EQ(engine.PendingCount(1), 1);
}

TEST(MatchingEngineTest, ExpiryDropsOnlyStaleRequests) {
  MatchingEngine engine(2, /*patience=*/2);
  engine.AddRequest({0, 1, 10});
  engine.AddRequest({0, 1, 12});
  EXPECT_EQ(engine.ExpireOld(TimeSlot(12)), 0);  // age 2 is still fine
  EXPECT_EQ(engine.ExpireOld(TimeSlot(13)), 1);  // the slot-10 one dies
  EXPECT_EQ(engine.PendingCount(0), 1);
  EXPECT_EQ(engine.TotalPending(), 1);
}

TEST(MatchingEngineTest, ZeroPatienceExpiresNextSlot) {
  MatchingEngine engine(1, 0);
  engine.AddRequest({0, 0, 5});
  EXPECT_EQ(engine.ExpireOld(TimeSlot(5)), 0);
  EXPECT_EQ(engine.ExpireOld(TimeSlot(6)), 1);
}

TEST(MatchingEngineTest, ClearEmptiesEverything) {
  MatchingEngine engine(2, 2);
  engine.AddRequest({0, 1, 1});
  engine.AddRequest({1, 0, 1});
  engine.Clear();
  EXPECT_EQ(engine.TotalPending(), 0);
  EXPECT_EQ(engine.PendingCount(0), 0);
  EXPECT_EQ(engine.PendingCount(1), 0);
}

// ----------------------------------------------------------- StationQueue --

TEST(StationQueueTest, PlugInReleasesLifecycle) {
  StationQueue q(2);
  EXPECT_EQ(q.free_points(), 2);
  q.Enqueue(7);
  q.Enqueue(8);
  q.Enqueue(9);
  EXPECT_EQ(q.waiting(), 3);
  EXPECT_EQ(q.load(), 3);
  ASSERT_TRUE(q.CanPlugIn());
  EXPECT_EQ(q.PlugInNext(), 7);
  EXPECT_EQ(q.PlugInNext(), 8);
  EXPECT_EQ(q.free_points(), 0);
  EXPECT_FALSE(q.CanPlugIn());
  EXPECT_EQ(q.load(), 3);  // 2 charging + 1 waiting
  q.Release();
  EXPECT_EQ(q.free_points(), 1);
  EXPECT_TRUE(q.CanPlugIn());
  EXPECT_EQ(q.PlugInNext(), 9);
  EXPECT_EQ(q.waiting(), 0);
}

TEST(StationQueueTest, RemoveWaiting) {
  StationQueue q(1);
  q.Enqueue(1);
  q.Enqueue(2);
  EXPECT_TRUE(q.RemoveWaiting(2));
  EXPECT_FALSE(q.RemoveWaiting(2));
  EXPECT_EQ(q.waiting(), 1);
}

TEST(StationQueueTest, ClearResets) {
  StationQueue q(2);
  q.Enqueue(1);
  (void)q.PlugInNext();
  q.Clear();
  EXPECT_EQ(q.occupied(), 0);
  EXPECT_EQ(q.waiting(), 0);
}

// ------------------------------------------------------------------ Trace --

TEST(TraceTest, AggregatesAlwaysCounted) {
  Trace trace(TraceLevel::kAggregatesOnly);
  TripRecord trip;
  trip.fare_cny = 25.0f;
  EXPECT_EQ(trace.AddTrip(trip), -1);  // not retained
  EXPECT_EQ(trace.total_trips(), 1);
  EXPECT_DOUBLE_EQ(trace.total_fares(), 25.0);
  EXPECT_TRUE(trace.trips().empty());
}

TEST(TraceTest, FullLevelRetainsRecords) {
  Trace trace(TraceLevel::kFull);
  TripRecord trip;
  trip.fare_cny = 30.0f;
  EXPECT_EQ(trace.AddTrip(trip), 0);
  EXPECT_EQ(trace.trips().size(), 1u);
}

TEST(TraceTest, ChargeEventsBucketedByPluginHour) {
  Trace trace(TraceLevel::kFull);
  ChargeEvent event;
  event.plugin_slot = 3 * kSlotsPerHour;  // 03:00
  event.cost_cny = 40.0f;
  trace.AddChargeEvent(event);
  EXPECT_EQ(trace.charge_starts_by_hour()[3], 1);
  EXPECT_DOUBLE_EQ(trace.total_charge_cost(), 40.0);
}

TEST(TraceTest, SetFirstCruiseBackfills) {
  Trace trace(TraceLevel::kFull);
  ChargeEvent event;
  const int64_t idx = trace.AddChargeEvent(event);
  EXPECT_LT(trace.charge_events()[0].first_cruise_min, 0.0f);
  trace.SetFirstCruise(idx, 12.5f);
  EXPECT_FLOAT_EQ(trace.charge_events()[0].first_cruise_min, 12.5f);
  trace.SetFirstCruise(-1, 99.0f);   // no-op
  trace.SetFirstCruise(100, 99.0f);  // no-op
}

TEST(TraceTest, ClearResetsEverything) {
  Trace trace(TraceLevel::kFull);
  trace.AddTrip(TripRecord{});
  trace.AddChargeEvent(ChargeEvent{});
  trace.CountExpiredRequests(5);
  trace.Clear();
  EXPECT_EQ(trace.total_trips(), 0);
  EXPECT_EQ(trace.total_charge_events(), 0);
  EXPECT_EQ(trace.expired_requests(), 0);
  EXPECT_TRUE(trace.trips().empty());
  EXPECT_TRUE(trace.charge_events().empty());
}

TEST(TaxiTest, PhaseNames) {
  EXPECT_STREQ(TaxiPhaseName(TaxiPhase::kCruising), "cruising");
  EXPECT_STREQ(TaxiPhaseName(TaxiPhase::kCharging), "charging");
}

TEST(TaxiTest, TotalsPeArithmetic) {
  TaxiTotals totals;
  totals.cruise_min = 60.0;
  totals.serve_min = 120.0;
  totals.idle_min = 30.0;
  totals.charge_min = 30.0;
  totals.revenue_cny = 200.0;
  totals.charge_cost_cny = 40.0;
  EXPECT_DOUBLE_EQ(totals.on_duty_min(), 240.0);
  EXPECT_DOUBLE_EQ(totals.profit_cny(), 160.0);
  EXPECT_DOUBLE_EQ(totals.hourly_pe(), 40.0);
}

TEST(TaxiTest, ZeroTimePeIsZero) {
  TaxiTotals totals;
  EXPECT_DOUBLE_EQ(totals.hourly_pe(), 0.0);
}

}  // namespace
}  // namespace fairmove
