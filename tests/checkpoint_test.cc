// Tests of the durable-checkpoint subsystem: CRC32 / binary codec
// primitives, atomic file replacement, the FMCKPT1 frame (every single-byte
// corruption must be rejected), the retained CheckpointStore with its
// LATEST pointer, per-policy SaveState/RestoreState bit-exactness, the
// chaos file corrupters, FAIRMOVE_CHECKPOINT_* env validation, and the
// end-to-end interrupted-resume path of Trainer::TrainGuarded — including
// graceful degradation to older retained frames and a run on the parallel
// execution pool.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fairmove/common/config.h"
#include "fairmove/common/parallel.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/io/atomic_file.h"
#include "fairmove/io/binary.h"
#include "fairmove/resilience/chaos.h"
#include "fairmove/resilience/checkpoint.h"
#include "fairmove/rl/cma2c_policy.h"
#include "fairmove/rl/dqn_policy.h"
#include "fairmove/rl/tba_policy.h"
#include "fairmove/rl/tql_policy.h"

namespace fairmove {
namespace {

/// Fresh per-test scratch directory.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fairmove_ckpt_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Serialized policy state, as one byte string (the bit-exactness probe).
std::string StateBytes(const DisplacementPolicy& policy) {
  BinaryWriter w;
  const Status st = policy.SaveState(&w);
  EXPECT_TRUE(st.ok()) << st;
  return w.Release();
}

// ------------------------------------------------------------------ CRC32 --

TEST(Crc32Test, KnownAnswer) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(Crc32Test, SensitiveToEveryByte) {
  const std::string base = "fairmove checkpoint";
  const uint32_t crc = Crc32(base);
  for (size_t i = 0; i < base.size(); ++i) {
    std::string mutated = base;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_NE(Crc32(mutated), crc) << "flip at byte " << i;
  }
}

// ----------------------------------------------------- BinaryWriter/Reader --

TEST(BinaryCodecTest, RoundTripsEveryType) {
  BinaryWriter w;
  w.WriteBool(true);
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123ll);
  w.WriteF32(1.5f);
  w.WriteF64(-2.25);
  w.WriteString("hello");
  w.WriteFloatVec({1.0f, -2.0f, 3.5f});

  BinaryReader r(w.str());
  bool b = false;
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  float f32 = 0.0f;
  double f64 = 0.0;
  std::string s;
  std::vector<float> vec;
  ASSERT_TRUE(r.ReadBool(&b).ok());
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadF32(&f32).ok());
  ASSERT_TRUE(r.ReadF64(&f64).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadFloatVec(&vec).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(b);
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(vec, (std::vector<float>{1.0f, -2.0f, 3.5f}));
}

TEST(BinaryCodecTest, TruncationYieldsDescriptiveError) {
  BinaryWriter w;
  w.WriteU64(7);
  const std::string bytes = w.str();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    BinaryReader r(bytes.substr(0, keep));
    uint64_t v = 0;
    const Status st = r.ReadU64(&v);
    EXPECT_FALSE(st.ok()) << "prefix of " << keep << " byte(s)";
  }
}

TEST(BinaryCodecTest, OverlongStringRejectedNotAllocated) {
  BinaryWriter w;
  w.WriteU64(uint64_t{1} << 40);  // absurd declared length
  BinaryReader r(w.str());
  std::string s;
  const Status st = r.ReadString(&s);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("length"), std::string::npos) << st;
}

TEST(BinaryCodecTest, RejectsMalformedBool) {
  BinaryWriter w;
  w.WriteU8(2);
  BinaryReader r(w.str());
  bool b = false;
  EXPECT_FALSE(r.ReadBool(&b).ok());
}

// --------------------------------------------------------- AtomicFileWriter --

TEST(AtomicFileTest, WritesAndReplacesDurably) {
  const std::string dir = ScratchDir("atomic");
  const std::string path = dir + "/file.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  const StatusOr<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second");
  // No tmp droppings left behind.
  int entries = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1);
}

TEST(AtomicFileTest, MissingFileIsNotFound) {
  const StatusOr<std::string> read =
      ReadFileToString(ScratchDir("missing") + "/nope");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// ----------------------------------------------------------- FMCKPT1 frame --

CheckpointMeta TestMeta() {
  CheckpointMeta meta;
  meta.episode = 7;
  meta.policy_name = "FairMove";
  meta.config_crc = 0x1234ABCD;
  return meta;
}

TEST(CheckpointFrameTest, RoundTripsPayloadAndMeta) {
  const std::string payload = "the quick brown payload";
  const std::string framed = FrameCheckpoint(TestMeta(), payload);
  CheckpointMeta meta;
  const StatusOr<std::string> back = UnframeCheckpoint(framed, &meta);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(meta.episode, 7);
  EXPECT_EQ(meta.policy_name, "FairMove");
  EXPECT_EQ(meta.config_crc, 0x1234ABCDu);
  EXPECT_EQ(meta.payload_size, payload.size());
}

TEST(CheckpointFrameTest, EverySingleByteCorruptionIsRejected) {
  const std::string framed = FrameCheckpoint(TestMeta(), "payload bytes");
  for (size_t i = 0; i < framed.size(); ++i) {
    std::string corrupt = framed;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_FALSE(UnframeCheckpoint(corrupt).ok()) << "flip at byte " << i;
  }
}

TEST(CheckpointFrameTest, EveryTruncationIsRejected) {
  const std::string framed = FrameCheckpoint(TestMeta(), "payload bytes");
  for (size_t keep = 0; keep < framed.size(); ++keep) {
    EXPECT_FALSE(UnframeCheckpoint(framed.substr(0, keep)).ok())
        << "kept " << keep << " byte(s)";
  }
}

TEST(CheckpointFrameTest, ParseMetaDoesNotRequireValidPayload) {
  std::string framed = FrameCheckpoint(TestMeta(), "payload bytes");
  // Corrupt one payload byte: the cheap header parse still succeeds, the
  // full unframe rejects.
  framed[framed.size() - 6] ^= 0x01;
  EXPECT_TRUE(ParseCheckpointMeta(framed).ok());
  EXPECT_FALSE(UnframeCheckpoint(framed).ok());
}

// --------------------------------------------------------- CheckpointStore --

TEST(CheckpointStoreTest, WriteAdvancesLatestAndPrunes) {
  const std::string dir = ScratchDir("store");
  CheckpointStore store(dir, CheckpointStore::Options{2});
  ASSERT_TRUE(store.Init().ok());
  for (int e = 1; e <= 5; ++e) {
    CheckpointMeta meta;
    meta.episode = e;
    meta.policy_name = "p";
    ASSERT_TRUE(store.Write(meta, "payload " + std::to_string(e)).ok());
  }
  const std::vector<CheckpointStore::Candidate> candidates =
      store.ListCandidates();
  ASSERT_EQ(candidates.size(), 2u);  // retain = 2, LATEST deduped
  EXPECT_EQ(candidates[0].episode, 5);
  EXPECT_EQ(candidates[1].episode, 4);
  const StatusOr<CheckpointStore::Loaded> latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->meta.episode, 5);
  EXPECT_EQ(latest->payload, "payload 5");
}

TEST(CheckpointStoreTest, FallsBackPastCorruptNewestFrame) {
  const std::string dir = ScratchDir("fallback");
  CheckpointStore store(dir, CheckpointStore::Options{3});
  ASSERT_TRUE(store.Init().ok());
  for (int e = 1; e <= 3; ++e) {
    CheckpointMeta meta;
    meta.episode = e;
    meta.policy_name = "p";
    ASSERT_TRUE(store.Write(meta, "payload " + std::to_string(e)).ok());
  }
  ASSERT_TRUE(
      FlipFileBytes(dir + "/" + CheckpointStore::FileName(3), 4, 99).ok());
  const StatusOr<CheckpointStore::Loaded> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->meta.episode, 2);
  EXPECT_EQ(loaded->payload, "payload 2");
}

TEST(CheckpointStoreTest, SurvivesStaleLatestPointer) {
  const std::string dir = ScratchDir("stale_latest");
  CheckpointStore store(dir, CheckpointStore::Options{3});
  ASSERT_TRUE(store.Init().ok());
  CheckpointMeta meta;
  meta.episode = 1;
  meta.policy_name = "p";
  ASSERT_TRUE(store.Write(meta, "payload 1").ok());
  ASSERT_TRUE(CorruptLatestPointer(dir, "ckpt-99999999.fmck").ok());
  const StatusOr<CheckpointStore::Loaded> loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->meta.episode, 1);
}

TEST(CheckpointStoreTest, TruncatedFrameRejectedWithDescriptiveStatus) {
  const std::string dir = ScratchDir("truncated");
  CheckpointStore store(dir, CheckpointStore::Options{3});
  ASSERT_TRUE(store.Init().ok());
  CheckpointMeta meta;
  meta.episode = 1;
  meta.policy_name = "p";
  ASSERT_TRUE(store.Write(meta, std::string(256, 'x')).ok());
  const std::string frame = dir + "/" + CheckpointStore::FileName(1);
  ASSERT_TRUE(TruncateFileBytes(frame, 40).ok());
  const StatusOr<CheckpointStore::Loaded> loaded = store.Load(frame);
  ASSERT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.status().message().empty());
  EXPECT_FALSE(store.LoadLatest().ok());  // nothing valid remains
}

TEST(CheckpointStoreTest, EmptyDirectoryIsNotFound) {
  CheckpointStore store(ScratchDir("empty"));
  ASSERT_TRUE(store.Init().ok());
  const StatusOr<CheckpointStore::Loaded> loaded = store.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// -------------------------------------------- policy state bit-exactness --

/// Trains `policy` briefly so optimizer moments / RNG streams / buffers are
/// all non-trivial, then checks SaveState -> fresh policy -> RestoreState
/// -> SaveState reproduces the byte-identical state.
template <typename MakePolicyFn>
void CheckStateRoundTrip(MakePolicyFn make_policy) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 2;
  cfg.trainer.slots_per_episode = 24;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto policy = make_policy(system->sim());
  Trainer trainer = system->MakeTrainer();
  ASSERT_TRUE(trainer.TrainGuarded(policy.get(), nullptr).ok());
  const std::string bytes = StateBytes(*policy);
  ASSERT_FALSE(bytes.empty());

  auto restored = make_policy(system->sim());
  ASSERT_NE(StateBytes(*restored), bytes);  // fresh state really differs
  BinaryReader in(bytes);
  const Status st = restored->RestoreState(&in);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_TRUE(in.AtEnd());
  EXPECT_EQ(StateBytes(*restored), bytes);
}

TEST(PolicyStateTest, Cma2cRoundTripsBitExact) {
  CheckStateRoundTrip([](const Simulator& sim) {
    Cma2cPolicy::Options opt;
    opt.actor_hidden = {8};
    opt.critic_hidden = {8};
    opt.batch_size = 32;
    opt.actor_warmup_batches = 0;
    auto policy = std::make_unique<Cma2cPolicy>(sim, opt);
    policy->EnableDivergenceGuard();
    return policy;
  });
}

TEST(PolicyStateTest, DqnRoundTripsBitExact) {
  CheckStateRoundTrip([](const Simulator& sim) {
    DqnPolicy::Options opt;
    opt.hidden = {8};
    opt.min_replay = 64;
    opt.minibatch = 16;
    return std::make_unique<DqnPolicy>(sim, opt);
  });
}

TEST(PolicyStateTest, TqlRoundTripsBitExact) {
  CheckStateRoundTrip(
      [](const Simulator& sim) { return std::make_unique<TqlPolicy>(sim); });
}

TEST(PolicyStateTest, TbaRoundTripsBitExact) {
  CheckStateRoundTrip([](const Simulator& sim) {
    TbaPolicy::Options opt;
    opt.hidden = {8};
    opt.batch_size = 64;
    return std::make_unique<TbaPolicy>(sim, opt);
  });
}

TEST(PolicyStateTest, Cma2cRefusesForeignAndGuardlessRestores) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  Cma2cPolicy::Options opt;
  opt.actor_hidden = {8};
  opt.critic_hidden = {8};
  Cma2cPolicy guarded(system->sim(), opt);
  guarded.EnableDivergenceGuard();
  const std::string bytes = StateBytes(guarded);

  // A guard-armed checkpoint cannot restore into a guard-less policy.
  Cma2cPolicy guardless(system->sim(), opt);
  BinaryReader in1(bytes);
  const Status st1 = guardless.RestoreState(&in1);
  ASSERT_FALSE(st1.ok());
  EXPECT_NE(st1.message().find("EnableDivergenceGuard"), std::string::npos)
      << st1;

  // A different architecture is refused outright.
  Cma2cPolicy::Options wide = opt;
  wide.actor_hidden = {16};
  Cma2cPolicy foreign(system->sim(), wide);
  foreign.EnableDivergenceGuard();
  BinaryReader in2(bytes);
  EXPECT_FALSE(foreign.RestoreState(&in2).ok());

  // A TQL record is not a CMA2C record.
  TqlPolicy tql(system->sim());
  const std::string tql_bytes = StateBytes(tql);
  Cma2cPolicy fresh(system->sim(), opt);
  fresh.EnableDivergenceGuard();
  BinaryReader in3(tql_bytes);
  EXPECT_FALSE(fresh.RestoreState(&in3).ok());
}

// ---------------------------------------- FAIRMOVE_CHECKPOINT_* overrides --

struct EnvVarGuard {
  ~EnvVarGuard() {
    unsetenv("FAIRMOVE_CHECKPOINT_DIR");
    unsetenv("FAIRMOVE_CHECKPOINT_EVERY");
    unsetenv("FAIRMOVE_CHECKPOINT_RETAIN");
  }
};

TEST(CheckpointEnvTest, ParsesValidOverrides) {
  EnvVarGuard guard;
  setenv("FAIRMOVE_CHECKPOINT_DIR", "/tmp/ckpts", 1);
  setenv("FAIRMOVE_CHECKPOINT_EVERY", "5", 1);
  setenv("FAIRMOVE_CHECKPOINT_RETAIN", "7", 1);
  const StatusOr<CheckpointConfig> ckpt = CheckpointConfig::FromEnv();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_TRUE(ckpt->enabled());
  EXPECT_EQ(ckpt->dir, "/tmp/ckpts");
  EXPECT_EQ(ckpt->every, 5);
  EXPECT_EQ(ckpt->retain, 7);
}

TEST(CheckpointEnvTest, UnsetDirDisablesCheckpointing) {
  EnvVarGuard guard;
  unsetenv("FAIRMOVE_CHECKPOINT_DIR");
  const StatusOr<CheckpointConfig> ckpt = CheckpointConfig::FromEnv();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_FALSE(ckpt->enabled());
}

TEST(CheckpointEnvTest, RejectsMalformedOverrides) {
  EnvVarGuard guard;
  setenv("FAIRMOVE_CHECKPOINT_DIR", "", 1);
  EXPECT_FALSE(CheckpointConfig::FromEnv().ok());
  setenv("FAIRMOVE_CHECKPOINT_DIR", "/tmp/ckpts", 1);
  setenv("FAIRMOVE_CHECKPOINT_EVERY", "0", 1);
  EXPECT_FALSE(CheckpointConfig::FromEnv().ok());
  setenv("FAIRMOVE_CHECKPOINT_EVERY", "three", 1);
  EXPECT_FALSE(CheckpointConfig::FromEnv().ok());
  setenv("FAIRMOVE_CHECKPOINT_EVERY", "1", 1);
  setenv("FAIRMOVE_CHECKPOINT_RETAIN", "-2", 1);
  EXPECT_FALSE(CheckpointConfig::FromEnv().ok());
}

// ------------------------------------------- end-to-end interrupted resume --

std::unique_ptr<Cma2cPolicy> MakeSmallCma2c(const Simulator& sim) {
  Cma2cPolicy::Options opt;
  opt.actor_hidden = {8};
  opt.critic_hidden = {8};
  opt.batch_size = 32;
  opt.actor_warmup_batches = 0;
  auto policy = std::make_unique<Cma2cPolicy>(sim, opt);
  policy->EnableDivergenceGuard();
  return policy;
}

FairMoveConfig SmallTrainingConfig() {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 4;
  cfg.trainer.slots_per_episode = 24;
  return cfg;
}

/// Reference run (no checkpointing): final state bytes + stats history.
void RunReference(std::string* final_state,
                  std::vector<Trainer::EpisodeStats>* stats) {
  const FairMoveConfig cfg = SmallTrainingConfig();
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto policy = MakeSmallCma2c(system->sim());
  Trainer trainer = system->MakeTrainer();
  ASSERT_TRUE(trainer.TrainGuarded(policy.get(), stats).ok());
  *final_state = StateBytes(*policy);
}

TEST(ResumeTest, MidRunResumeIsBitIdenticalEvenPastCorruptFrames) {
  std::string want_state;
  std::vector<Trainer::EpisodeStats> want_stats;
  RunReference(&want_state, &want_stats);
  ASSERT_EQ(want_stats.size(), 4u);

  // Checkpointed run: every episode, retain all four frames.
  const std::string dir = ScratchDir("resume");
  CheckpointConfig ckpt;
  ckpt.dir = dir;
  ckpt.every = 1;
  ckpt.retain = 4;
  const FairMoveConfig cfg = SmallTrainingConfig();
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    std::vector<Trainer::EpisodeStats> stats;
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), &stats, ckpt).ok());
    ASSERT_EQ(StateBytes(*policy), want_state);  // checkpointing is inert
  }

  // Simulate a crash that tore the two newest frames: the resume must fall
  // back to the episode-2 frame, retrain episodes 3 and 4, and still end
  // bit-identical to the uninterrupted reference.
  ASSERT_TRUE(
      FlipFileBytes(dir + "/" + CheckpointStore::FileName(4), 2, 1).ok());
  ASSERT_TRUE(TruncateFileBytes(dir + "/" + CheckpointStore::FileName(3),
                                64).ok());
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    std::vector<Trainer::EpisodeStats> stats;
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), &stats, ckpt).ok());
    EXPECT_EQ(StateBytes(*policy), want_state);
    ASSERT_EQ(stats.size(), want_stats.size());
    for (size_t i = 0; i < stats.size(); ++i) {
      EXPECT_EQ(stats[i].avg_reward, want_stats[i].avg_reward) << i;
      EXPECT_EQ(stats[i].transitions, want_stats[i].transitions) << i;
      EXPECT_EQ(stats[i].fleet_pf, want_stats[i].fleet_pf) << i;
    }
  }

  // Resume at the final frame: nothing retrains, same bytes again.
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    std::vector<Trainer::EpisodeStats> stats;
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), &stats, ckpt).ok());
    EXPECT_EQ(StateBytes(*policy), want_state);
    EXPECT_EQ(stats.size(), want_stats.size());
  }
}

TEST(ResumeTest, AllFramesCorruptDegradesToFreshStart) {
  std::string want_state;
  std::vector<Trainer::EpisodeStats> want_stats;
  RunReference(&want_state, &want_stats);

  const std::string dir = ScratchDir("all_corrupt");
  CheckpointConfig ckpt;
  ckpt.dir = dir;
  ckpt.every = 1;
  ckpt.retain = 4;
  const FairMoveConfig cfg = SmallTrainingConfig();
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), nullptr, ckpt).ok());
  }
  for (int e = 1; e <= 4; ++e) {
    ASSERT_TRUE(FlipFileBytes(dir + "/" + CheckpointStore::FileName(e), 3,
                              static_cast<uint64_t>(e)).ok());
  }
  ASSERT_TRUE(CorruptLatestPointer(dir, "ckpt-00424242.fmck").ok());
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    std::vector<Trainer::EpisodeStats> stats;
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), &stats, ckpt).ok());
    EXPECT_EQ(StateBytes(*policy), want_state);  // trained from scratch
    EXPECT_EQ(stats.size(), want_stats.size());
  }
}

TEST(ResumeTest, ForeignConfigOrPolicyIsRefused) {
  const std::string dir = ScratchDir("foreign");
  CheckpointConfig ckpt;
  ckpt.dir = dir;
  FairMoveConfig cfg = SmallTrainingConfig();
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), nullptr, ckpt).ok());
  }
  // Same checkpoint dir, different reward shape: the config CRC differs, so
  // resume must refuse every frame and train from scratch — which here just
  // means the cursor starts at 0 (verified via a different-policy refusal
  // below plus stats length).
  FairMoveConfig other = cfg;
  other.trainer.reward.alpha = 0.9;
  {
    auto system = std::move(FairMoveSystem::Create(other)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    ASSERT_NE(trainer.ConfigCrc(),
              Trainer(&system->sim(), cfg.trainer).ConfigCrc());
    std::vector<Trainer::EpisodeStats> stats;
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), &stats, ckpt).ok());
    EXPECT_EQ(stats.size(), 4u);  // resumed nothing
  }
  // A TQL run refuses the FairMove frames (policy-name check).
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    TqlPolicy policy(system->sim());
    Trainer trainer = system->MakeTrainer();
    std::vector<Trainer::EpisodeStats> stats;
    ASSERT_TRUE(trainer.TrainGuarded(&policy, &stats, ckpt).ok());
    EXPECT_EQ(stats.size(), 4u);  // resumed nothing
  }
}

TEST(ResumeTest, ParallelPoolRunMatchesReference) {
  std::string want_state;
  std::vector<Trainer::EpisodeStats> want_stats;
  RunReference(&want_state, &want_stats);

  SetGlobalThreads(4);
  const std::string dir = ScratchDir("parallel");
  CheckpointConfig ckpt;
  ckpt.dir = dir;
  const FairMoveConfig cfg = SmallTrainingConfig();
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), nullptr, ckpt).ok());
  }
  // Tear the newest frame and resume — still bit-identical, still on the
  // 4-thread pool.
  ASSERT_TRUE(
      FlipFileBytes(dir + "/" + CheckpointStore::FileName(4), 1, 5).ok());
  {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    auto policy = MakeSmallCma2c(system->sim());
    Trainer trainer = system->MakeTrainer();
    std::vector<Trainer::EpisodeStats> stats;
    ASSERT_TRUE(trainer.TrainGuarded(policy.get(), &stats, ckpt).ok());
    EXPECT_EQ(StateBytes(*policy), want_state);
  }
  SetGlobalThreads(1);
}

}  // namespace
}  // namespace fairmove
