// Reproducibility guarantees: golden RNG values (pinning the exact stream
// across refactors), end-to-end evaluator determinism, and cross-component
// seed isolation. These tests are what make "same seed, same experiment"
// a contract rather than an accident.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fairmove/common/parallel.h"
#include "fairmove/common/rng.h"
#include "fairmove/core/fairmove.h"
#include "fairmove/core/metrics.h"
#include "fairmove/resilience/fault_schedule.h"
#include "fairmove/rl/cma2c_policy.h"
#include "fairmove/rl/features.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

// ------------------------------------------------------------ Golden RNG --

TEST(GoldenRngTest, FirstWordsOfKnownSeedsNeverChange) {
  // Golden values pin the exact xoshiro256++/SplitMix64 stream. If this
  // test fails, every recorded experiment in EXPERIMENTS.md is invalidated
  // — bump them consciously, never casually.
  Rng a(0);
  const uint64_t a0 = a.NextU64();
  const uint64_t a1 = a.NextU64();
  Rng b(20130);
  const uint64_t b0 = b.NextU64();
  Rng c(0), d(20130);
  EXPECT_EQ(c.NextU64(), a0);
  EXPECT_EQ(c.NextU64(), a1);
  EXPECT_EQ(d.NextU64(), b0);
  EXPECT_NE(a0, b0);
}

TEST(GoldenRngTest, CityBuildIsBitStableAcrossCalls) {
  CityConfig cfg = CityConfig{}.Scaled(0.08);
  auto a = std::move(CityBuilder(cfg).Build()).value();
  auto b = std::move(CityBuilder(cfg).Build()).value();
  for (RegionId r = 0; r < a.num_regions(); ++r) {
    EXPECT_DOUBLE_EQ(a.region(r).centroid_km.x, b.region(r).centroid_km.x);
    EXPECT_DOUBLE_EQ(a.region(r).centroid_km.y, b.region(r).centroid_km.y);
  }
  for (StationId s = 0; s < a.num_stations(); ++s) {
    EXPECT_EQ(a.station(s).num_points, b.station(s).num_points);
    EXPECT_EQ(a.station(s).region, b.station(s).region);
  }
}

// ------------------------------------------------- end-to-end determinism --

TEST(DeterminismTest, EvaluatorProducesIdenticalMetricsTwice) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.eval.days = 1;
  auto run = [&]() {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    Evaluator evaluator = system->MakeEvaluator();
    return evaluator.RunGroundTruth();
  };
  const MethodResult a = run();
  const MethodResult b = run();
  EXPECT_DOUBLE_EQ(a.metrics.pe.Mean(), b.metrics.pe.Mean());
  EXPECT_DOUBLE_EQ(a.metrics.pf, b.metrics.pf);
  EXPECT_EQ(a.metrics.trips, b.metrics.trips);
  EXPECT_EQ(a.metrics.charge_events, b.metrics.charge_events);
}

TEST(DeterminismTest, TrainedCma2cIsReproducible) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 2;
  cfg.eval.days = 1;
  auto run = [&]() {
    auto system = std::move(FairMoveSystem::Create(cfg)).value();
    Cma2cPolicy::Options options;
    options.seed = 5;
    Cma2cPolicy policy(system->sim(), options);
    Trainer trainer = system->MakeTrainer();
    trainer.Train(&policy);
    const auto stats = trainer.RunEvaluationEpisode(&policy, 77, 144);
    return stats.avg_reward;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

// ------------------------------------- sharded stepping is thread-blind --

std::string FullScaleDigest(int threads) {
  SetGlobalThreads(threads);
  // Full Shenzhen scale — 20,130 taxis / 491 regions / 123 stations — so
  // the digest exercises every shard boundary the bench config has, with
  // an active fault schedule perturbing demand, charging, and breakdowns
  // mid-run (fault draws come from dedicated per-region streams and must
  // be as thread-blind as the rest).
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen();
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  FaultSchedule faults;
  faults.AddDemandShock(/*region=*/7, /*from_slot=*/6, /*until_slot=*/30,
                        /*multiplier=*/2.5);
  faults.AddStationOutage(/*station=*/3, /*from_slot=*/10, /*until_slot=*/40);
  faults.AddBreakdownHazard(/*from_slot=*/12, /*until_slot=*/36,
                            /*per_slot_prob=*/2e-4, /*repair_slots=*/6);
  EXPECT_TRUE(system->sim().SetFaultSchedule(&faults).ok());
  GtPolicy policy;
  system->sim().Reset();
  system->sim().RunSlots(&policy, 48);
  const FleetMetrics m = ComputeFleetMetrics(system->sim());
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|%.17g|%lld|%lld|%lld|%lld",
                m.pe.empty() ? 0.0 : m.pe.Mean(), m.pf, m.pe_sum,
                m.revenue_cny, static_cast<long long>(m.trips),
                static_cast<long long>(m.charge_events),
                static_cast<long long>(m.expired_requests),
                static_cast<long long>(m.total_requests));
  SetGlobalThreads(1);
  return buf;
}

TEST(DeterminismTest, FullScaleShardedSteppingIsThreadCountInvariant) {
  // The tentpole contract: region-sharded stepping with deterministic
  // cross-shard handoff is byte-identical at any FAIRMOVE_THREADS, and
  // two same-seed runs at the same thread count agree exactly.
  const std::string one = FullScaleDigest(1);
  const std::string two = FullScaleDigest(2);
  const std::string four = FullScaleDigest(4);
  const std::string four_again = FullScaleDigest(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(four, four_again);
}

TEST(DeterminismTest, FeatureVectorsAreDeterministic) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunSlots(&policy, 30);
  FeatureExtractor f1(&system->sim());
  FeatureExtractor f2(&system->sim());
  TaxiObs obs;
  obs.taxi = 3;
  obs.region = 2;
  obs.soc = 0.42;
  obs.may_charge = true;
  std::vector<float> a, b;
  f1.Extract(obs, &a);
  f2.Extract(obs, &b);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, PolicySeedsAreIsolatedFromEnvironmentSeed) {
  // The same policy seed against two different environment seeds must not
  // crash or alias; different policy seeds on the same environment diverge.
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  cfg.trainer.episodes = 1;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto run = [&](uint64_t policy_seed) {
    Cma2cPolicy::Options options;
    options.seed = policy_seed;
    Cma2cPolicy policy(system->sim(), options);
    Trainer trainer = system->MakeTrainer();
    const auto stats = trainer.Train(&policy);
    return stats[0].avg_reward;
  };
  const double a = run(1);
  const double b = run(2);
  EXPECT_NE(a, b) << "different policy seeds should explore differently";
}

}  // namespace
}  // namespace fairmove
