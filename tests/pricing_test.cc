#include <gtest/gtest.h>

#include "fairmove/pricing/fare_model.h"
#include "fairmove/pricing/tou_tariff.h"

namespace fairmove {
namespace {

// ------------------------------------------------------------- TouTariff --

TEST(TouTariffTest, RatesMatchPaper) {
  EXPECT_DOUBLE_EQ(TouTariff::RateOf(PricePeriod::kOffPeak), 0.9);
  EXPECT_DOUBLE_EQ(TouTariff::RateOf(PricePeriod::kFlat), 1.2);
  EXPECT_DOUBLE_EQ(TouTariff::RateOf(PricePeriod::kPeak), 1.6);
}

TEST(TouTariffTest, ShenzhenScheduleHasAllThreePeriods) {
  const TouTariff tariff = TouTariff::Shenzhen();
  EXPECT_GT(tariff.HoursIn(PricePeriod::kOffPeak), 0);
  EXPECT_GT(tariff.HoursIn(PricePeriod::kFlat), 0);
  EXPECT_GT(tariff.HoursIn(PricePeriod::kPeak), 0);
  EXPECT_EQ(tariff.HoursIn(PricePeriod::kOffPeak) +
                tariff.HoursIn(PricePeriod::kFlat) +
                tariff.HoursIn(PricePeriod::kPeak),
            kHoursPerDay);
}

TEST(TouTariffTest, ValleysMatchFig4ChargingPeaks) {
  // The paper's charging peaks (2-6, 12-14, 17-18 h) sit in price valleys.
  const TouTariff tariff = TouTariff::Shenzhen();
  auto slot_at_hour = [](int h) { return TimeSlot(h * kSlotsPerHour); };
  for (int h : {2, 3, 4, 5, 6, 12, 13, 17}) {
    EXPECT_EQ(tariff.PeriodAt(slot_at_hour(h)), PricePeriod::kOffPeak)
        << "hour " << h;
  }
  for (int h : {9, 10, 11, 14, 15, 16, 18, 19, 20, 21}) {
    EXPECT_EQ(tariff.PeriodAt(slot_at_hour(h)), PricePeriod::kPeak)
        << "hour " << h;
  }
}

TEST(TouTariffTest, RateAtFollowsPeriod) {
  const TouTariff tariff = TouTariff::Shenzhen();
  const TimeSlot night(3 * kSlotsPerHour);
  const TimeSlot morning(10 * kSlotsPerHour);
  EXPECT_DOUBLE_EQ(tariff.RateAt(night), 0.9);
  EXPECT_DOUBLE_EQ(tariff.RateAt(morning), 1.6);
}

TEST(TouTariffTest, CostOfScalesWithEnergy) {
  const TouTariff tariff = TouTariff::Shenzhen();
  const TimeSlot night(3 * kSlotsPerHour);
  EXPECT_DOUBLE_EQ(tariff.CostOf(night, 10.0), 9.0);
  EXPECT_DOUBLE_EQ(tariff.CostOf(night, 0.0), 0.0);
}

TEST(TouTariffTest, PeriodRepeatsDaily) {
  const TouTariff tariff = TouTariff::Shenzhen();
  for (int s = 0; s < kSlotsPerDay; ++s) {
    EXPECT_EQ(tariff.PeriodAt(TimeSlot(s)),
              tariff.PeriodAt(TimeSlot(s + 3 * kSlotsPerDay)));
  }
}

TEST(TouTariffTest, CustomScheduleValidates) {
  std::array<PricePeriod, kHoursPerDay> periods{};
  periods.fill(PricePeriod::kFlat);
  auto tariff_or = TouTariff::FromHourlyPeriods(periods);
  ASSERT_TRUE(tariff_or.ok());
  EXPECT_EQ(tariff_or->HoursIn(PricePeriod::kFlat), kHoursPerDay);
}

TEST(TouTariffTest, PeriodNames) {
  EXPECT_STREQ(PricePeriodName(PricePeriod::kOffPeak), "off-peak");
  EXPECT_STREQ(PricePeriodName(PricePeriod::kPeak), "peak");
}

// ----------------------------------------------------------- FareSchedule --

TEST(FareScheduleTest, FlagFareCoversShortTrips) {
  const FareSchedule fares = ShenzhenFares();
  const TimeSlot noon(12 * kSlotsPerHour);
  const double fare = fares.Fare(1.0, 5.0, noon);
  EXPECT_DOUBLE_EQ(fare, fares.flag_fare_cny + 5.0 * fares.per_minute_cny);
}

TEST(FareScheduleTest, MeteredBeyondFlagDistance) {
  const FareSchedule fares = ShenzhenFares();
  const TimeSlot noon(12 * kSlotsPerHour);
  const double f2 = fares.Fare(2.0, 0.0, noon);
  const double f5 = fares.Fare(5.0, 0.0, noon);
  EXPECT_NEAR(f5 - f2, 3.0 * fares.per_km_cny, 1e-9);
}

TEST(FareScheduleTest, MonotoneInDistanceAndTime) {
  const FareSchedule fares = ShenzhenFares();
  const TimeSlot noon(12 * kSlotsPerHour);
  double prev = 0.0;
  for (double km = 0.0; km <= 40.0; km += 1.0) {
    const double f = fares.Fare(km, km * 2.0, noon);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(FareScheduleTest, NightSurchargeApplies) {
  const FareSchedule fares = ShenzhenFares();
  const TimeSlot night(2 * kSlotsPerHour);
  const TimeSlot noon(12 * kSlotsPerHour);
  const double day_fare = fares.Fare(8.0, 15.0, noon);
  const double night_fare = fares.Fare(8.0, 15.0, night);
  EXPECT_NEAR(night_fare, day_fare * (1.0 + fares.night_surcharge), 1e-9);
}

TEST(FareScheduleTest, LongTripSurchargeBeyond25Km) {
  const FareSchedule fares = ShenzhenFares();
  const TimeSlot noon(12 * kSlotsPerHour);
  const double f25 = fares.Fare(25.0, 0.0, noon);
  const double f26 = fares.Fare(26.0, 0.0, noon);
  EXPECT_NEAR(f26 - f25,
              fares.per_km_cny * (1.0 + fares.long_trip_surcharge), 1e-9);
}

TEST(FareScheduleTest, ValidateRejectsNegatives) {
  FareSchedule fares;
  fares.per_km_cny = -1.0;
  EXPECT_FALSE(fares.Validate().ok());
  fares = FareSchedule{};
  fares.night_surcharge = -0.1;
  EXPECT_FALSE(fares.Validate().ok());
  EXPECT_TRUE(ShenzhenFares().Validate().ok());
}

TEST(FareScheduleTest, TypicalUrbanTripIsPlausible) {
  // A 6 km / 15 min daytime trip should cost roughly 20-40 CNY.
  const double fare =
      ShenzhenFares().Fare(6.0, 15.0, TimeSlot(10 * kSlotsPerHour));
  EXPECT_GT(fare, 18.0);
  EXPECT_LT(fare, 45.0);
}

}  // namespace
}  // namespace fairmove
