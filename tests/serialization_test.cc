// Tests of model persistence: MLP binary serialization and policy
// save/load round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "fairmove/core/fairmove.h"
#include "fairmove/nn/mlp.h"
#include "fairmove/rl/cma2c_policy.h"
#include "fairmove/rl/features.h"
#include "fairmove/rl/dqn_policy.h"

namespace fairmove {
namespace {

TEST(MlpSerializationTest, StreamRoundTripPreservesOutputs) {
  Mlp original({7, 16, 3}, Activation::kTanh, 42);
  std::stringstream stream;
  ASSERT_TRUE(original.Serialize(stream).ok());
  auto loaded_or = Mlp::Deserialize(stream);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  const Mlp& loaded = loaded_or.value();
  EXPECT_EQ(loaded.input_dim(), 7);
  EXPECT_EQ(loaded.output_dim(), 3);
  const std::vector<float> x{0.1f, -0.4f, 0.9f, 0.0f, 0.3f, -1.0f, 0.5f};
  const auto ya = original.Forward1(x);
  const auto yb = loaded.Forward1(x);
  for (size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(MlpSerializationTest, MultipleNetworksInOneStream) {
  Mlp a({3, 4, 2}, Activation::kRelu, 1);
  Mlp b({5, 6, 1}, Activation::kLinear, 2);
  std::stringstream stream;
  ASSERT_TRUE(a.Serialize(stream).ok());
  ASSERT_TRUE(b.Serialize(stream).ok());
  auto first = Mlp::Deserialize(stream);
  auto second = Mlp::Deserialize(stream);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->input_dim(), 3);
  EXPECT_EQ(second->input_dim(), 5);
}

TEST(MlpSerializationTest, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_FALSE(Mlp::Deserialize(empty).ok());
  std::stringstream garbage("this is not a network");
  EXPECT_FALSE(Mlp::Deserialize(garbage).ok());
  // Truncated blob.
  Mlp net({3, 2}, Activation::kRelu, 1);
  std::stringstream stream;
  ASSERT_TRUE(net.Serialize(stream).ok());
  std::string blob = stream.str();
  blob.resize(blob.size() / 2);
  std::stringstream truncated(blob);
  EXPECT_FALSE(Mlp::Deserialize(truncated).ok());
}

TEST(MlpSerializationTest, EveryTruncatedPrefixIsRejected) {
  Mlp net({3, 4, 2}, Activation::kTanh, 7);
  auto blob_or = net.SerializeToString();
  ASSERT_TRUE(blob_or.ok());
  const std::string& blob = *blob_or;
  // A loader fed any strict prefix must fail with a Status — never crash,
  // never hand back a half-initialised network.
  for (size_t keep = 0; keep < blob.size(); keep += 3) {
    EXPECT_FALSE(Mlp::DeserializeFromString(blob.substr(0, keep)).ok())
        << "prefix of " << keep << " byte(s)";
  }
}

TEST(MlpSerializationTest, NonFiniteWeightsRejectedAtLoad) {
  // A NaN that slipped into a saved model (cosmic ray, torn write past the
  // length fields, buggy producer) must be rejected at load, not silently
  // poison every later forward pass.
  for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()}) {
    Mlp net({3, 4, 2}, Activation::kTanh, 7);
    net.weights()[0].At(1, 1) = bad;
    auto blob = net.SerializeToString();
    ASSERT_TRUE(blob.ok());
    auto loaded = Mlp::DeserializeFromString(*blob);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("non-finite"),
              std::string::npos)
        << loaded.status();
  }
  // Same for a poisoned bias.
  Mlp net({3, 4, 2}, Activation::kTanh, 7);
  net.biases()[1][0] = std::numeric_limits<float>::quiet_NaN();
  auto blob = net.SerializeToString();
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(Mlp::DeserializeFromString(*blob).ok());
}

TEST(MlpSerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fairmove_net_test.bin";
  Mlp original({4, 8, 2}, Activation::kRelu, 9);
  ASSERT_TRUE(original.SaveToFile(path).ok());
  auto loaded = Mlp::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_parameters(), original.num_parameters());
  std::remove(path.c_str());
  EXPECT_FALSE(Mlp::LoadFromFile(path).ok());  // gone
}

class PolicyPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
  }
  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(PolicyPersistenceTest, Cma2cSaveLoadPreservesBehaviour) {
  const std::string path = ::testing::TempDir() + "/fairmove_cma2c.bin";
  Cma2cPolicy::Options options;
  options.seed = 11;
  Cma2cPolicy trained(system_->sim(), options);
  // Perturb the network away from init so the round trip is non-trivial:
  // one quick training episode.
  FairMoveConfig cfg = system_->config();
  Trainer trainer = system_->MakeTrainer();
  trained.SetTraining(true);
  trained.BeginEpisode(system_->sim());
  system_->sim().RunSlots(&trained, 40);
  ASSERT_TRUE(trained.SaveModel(path).ok());

  Cma2cPolicy restored(system_->sim(), options);
  ASSERT_TRUE(restored.LoadModel(path).ok());
  // Identical critic values on an arbitrary state.
  std::vector<float> state(
      static_cast<size_t>(FeatureExtractor(&system_->sim()).dim()), 0.1f);
  EXPECT_NEAR(restored.Value(state), trained.Value(state), 1e-6);
  std::remove(path.c_str());
}

TEST_F(PolicyPersistenceTest, DqnSaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fairmove_dqn.bin";
  DqnPolicy::Options options;
  options.seed = 12;
  DqnPolicy policy(system_->sim(), options);
  ASSERT_TRUE(policy.SaveModel(path).ok());
  DqnPolicy restored(system_->sim(), options);
  ASSERT_TRUE(restored.LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST_F(PolicyPersistenceTest, Cma2cLoadRejectsDqnShapedBlob) {
  // Regression: LoadModel used to check only the outer dims, so a blob of
  // two DQN-shaped nets (right input/output widths, ReLU everywhere, no
  // 1-dim critic head) loaded "successfully" into a CMA2C policy.
  const std::string path = ::testing::TempDir() + "/fairmove_dqn_shaped.bin";
  Cma2cPolicy policy(system_->sim());
  const int in = FeatureExtractor(&system_->sim()).dim();
  const int out = system_->sim().action_space().size();
  {
    // Same outer dims as the actor but DQN's ReLU activation, and a
    // "critic" that is another Q-head instead of a 1-output value net.
    Mlp fake_actor({in, 64, 64, out}, Activation::kRelu, 1);
    Mlp fake_critic({in, 64, 64, out}, Activation::kRelu, 2);
    std::ofstream fout(path, std::ios::binary);
    ASSERT_TRUE(fake_actor.Serialize(fout).ok());
    ASSERT_TRUE(fake_critic.Serialize(fout).ok());
  }
  const Status st = policy.LoadModel(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;
  std::remove(path.c_str());
}

TEST_F(PolicyPersistenceTest, Cma2cLoadRejectsMismatchedHiddenSizes) {
  const std::string path = ::testing::TempDir() + "/fairmove_thin.bin";
  Cma2cPolicy policy(system_->sim());
  const int in = FeatureExtractor(&system_->sim()).dim();
  const int out = system_->sim().action_space().size();
  {
    // Correct activations and outer dims, but thinner hidden layers.
    Mlp thin_actor({in, 32, out}, Activation::kTanh, 1);
    Mlp thin_critic({in, 32, 1}, Activation::kRelu, 2);
    std::ofstream fout(path, std::ios::binary);
    ASSERT_TRUE(thin_actor.Serialize(fout).ok());
    ASSERT_TRUE(thin_critic.Serialize(fout).ok());
  }
  const Status st = policy.LoadModel(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;
  std::remove(path.c_str());
}

TEST_F(PolicyPersistenceTest, Cma2cRoundTripStillLoadsAfterValidation) {
  // The stricter check must not reject a genuine save/load round trip.
  const std::string path = ::testing::TempDir() + "/fairmove_roundtrip.bin";
  Cma2cPolicy policy(system_->sim());
  ASSERT_TRUE(policy.SaveModel(path).ok());
  Cma2cPolicy restored(system_->sim());
  EXPECT_TRUE(restored.LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST_F(PolicyPersistenceTest, LoadRejectsWrongArchitecture) {
  const std::string path = ::testing::TempDir() + "/fairmove_wrong.bin";
  Mlp tiny({2, 2}, Activation::kRelu, 1);
  ASSERT_TRUE(tiny.SaveToFile(path).ok());
  DqnPolicy policy(system_->sim());
  EXPECT_FALSE(policy.LoadModel(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fairmove
