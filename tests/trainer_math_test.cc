// Hand-verified semi-MDP bookkeeping: the Trainer must accumulate
// per-slot rewards into decision windows with the right discounting, close
// windows at the next decision, and bootstrap with gamma^k.

#include <gtest/gtest.h>

#include <cmath>

#include "fairmove/core/fairmove.h"
#include "fairmove/core/trainer.h"
#include "fairmove/rl/faircharge_policy.h"
#include "fairmove/rl/gt_policy.h"

namespace fairmove {
namespace {

/// Stays always (forced charges via nearest station) and records every
/// transition it is fed.
class RecordingPolicy : public DisplacementPolicy {
 public:
  std::string name() const override { return "recording"; }
  void DecideActions(const Simulator& sim, const std::vector<TaxiObs>& vacant,
                     std::vector<Action>* actions) override {
    actions->clear();
    for (const TaxiObs& obs : vacant) {
      if (obs.must_charge) {
        actions->push_back(
            Action::Charge(sim.city().NearestStations(obs.region).front()));
      } else {
        actions->push_back(Action::Stay());
      }
    }
  }
  bool WantsTransitions() const override { return true; }
  void Learn(const std::vector<Transition>& batch) override {
    transitions.insert(transitions.end(), batch.begin(), batch.end());
  }
  std::vector<Transition> transitions;
};

class TrainerMathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
    cfg.trainer.episodes = 1;
    cfg.trainer.slots_per_episode = 80;
    system_ = std::move(FairMoveSystem::Create(cfg)).value();
  }
  std::unique_ptr<FairMoveSystem> system_;
};

TEST_F(TrainerMathTest, DiscountEqualsGammaToWindowLength) {
  RecordingPolicy policy;
  Trainer trainer = system_->MakeTrainer();
  trainer.Train(&policy);
  const double gamma = system_->config().trainer.reward.gamma;
  ASSERT_FALSE(policy.transitions.empty());
  for (const auto& t : policy.transitions) {
    EXPECT_GT(t.discount, 0.0);
    if (t.terminal && t.discount == 1.0) {
      // A window opened in the final slot flushes immediately; its unused
      // bootstrap discount is gamma^0.
      continue;
    }
    // discount = gamma^k for integer k >= 1 (at least one slot passes
    // between decisions).
    const double k = std::log(t.discount) / std::log(gamma);
    EXPECT_LE(t.discount, gamma + 1e-12);
    EXPECT_NEAR(k, std::round(k), 1e-6) << "discount " << t.discount;
  }
}

TEST_F(TrainerMathTest, StayingVacantTaxiDecidesEverySlot) {
  // A taxi that stays and is never matched decides every slot, so its
  // windows are exactly one slot long: discount == gamma.
  RecordingPolicy policy;
  Trainer trainer = system_->MakeTrainer();
  trainer.Train(&policy);
  const double gamma = system_->config().trainer.reward.gamma;
  int one_slot = 0;
  for (const auto& t : policy.transitions) {
    one_slot += std::abs(t.discount - gamma) < 1e-12 ? 1 : 0;
  }
  // The overwhelming majority of stay-decisions close after one slot.
  EXPECT_GT(one_slot, static_cast<int>(policy.transitions.size()) / 2);
}

TEST_F(TrainerMathTest, WindowRewardsAreDiscountedSums) {
  // Zero-profit windows (no fare, no charge cost, with alpha=1 so the
  // fairness penalty is off) must accumulate exactly 0.
  FairMoveConfig cfg = system_->config();
  cfg.trainer.reward.alpha = 1.0;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  RecordingPolicy policy;
  Trainer trainer = system->MakeTrainer();
  trainer.Train(&policy);
  int zero_windows = 0;
  for (const auto& t : policy.transitions) {
    if (std::abs(t.reward) < 1e-12) ++zero_windows;
    // And the pure-own reward never exceeds the Eq-5 reward at alpha=1.
    EXPECT_NEAR(t.reward, t.reward_own, 1e-9);
  }
  EXPECT_GT(zero_windows, 0) << "some stay-windows earn nothing";
}

TEST_F(TrainerMathTest, TerminalTransitionsOnlyAtEpisodeEnd) {
  RecordingPolicy policy;
  Trainer trainer = system_->MakeTrainer();
  trainer.Train(&policy);
  int terminals = 0;
  for (const auto& t : policy.transitions) terminals += t.terminal ? 1 : 0;
  // At most one open window per taxi can flush as terminal.
  EXPECT_LE(terminals, system_->sim().num_taxis());
  EXPECT_GT(terminals, 0);
}

// --------------------------------------------------------- FairCharge --

TEST(FairChargeTest, PicksLessLoadedStations) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  FairChargePolicy policy;
  // With idle stations the recommendation is simply the nearest.
  const RegionId region = 0;
  const StationId best = policy.BestStation(system->sim(), region);
  EXPECT_EQ(best, system->city().NearestStations(region).front());
}

TEST(FairChargeTest, RunsAFullEpisode) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  FairChargePolicy policy;
  policy.BeginEpisode(system->sim());
  system->sim().RunDays(&policy, 1);
  EXPECT_GT(system->sim().trace().total_charge_events(), 0);
}

TEST(FairChargeTest, RegisteredInTheFactory) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.04);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  auto policy = MakePolicy(PolicyKind::kFairCharge, system->sim(), 1);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "FairCharge");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kFairCharge), "FairCharge");
}

// --------------------------------------------------------- PhaseCounts --

TEST(PhaseCountsTest, SnapshotsPartitionTheFleetEverySlot) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunSlots(&policy, 100);
  const auto& snapshots = system->sim().trace().phase_counts();
  ASSERT_EQ(snapshots.size(), 100u);
  for (const PhaseCounts& counts : snapshots) {
    EXPECT_EQ(counts.cruising + counts.serving + counts.to_station +
                  counts.queuing + counts.charging + counts.broken_down,
              system->sim().num_taxis());
  }
  EXPECT_EQ(snapshots.front().slot, 0);
  EXPECT_EQ(snapshots.back().slot, 99);
}

TEST(PhaseCountsTest, AggregateOnlyTraceSkipsSnapshots) {
  FairMoveConfig cfg = FairMoveConfig::FullShenzhen().Scaled(0.05);
  cfg.sim.trace_level = TraceLevel::kAggregatesOnly;
  auto system = std::move(FairMoveSystem::Create(cfg)).value();
  GtPolicy policy;
  system->sim().RunSlots(&policy, 20);
  EXPECT_TRUE(system->sim().trace().phase_counts().empty());
}

}  // namespace
}  // namespace fairmove
